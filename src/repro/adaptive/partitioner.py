"""The adaptive partitioner: a hot-swappable delegate behind one scheme.

``AD`` is registered like any other grouping scheme but owns no routing rule
itself: every message goes through a *delegate* partitioner (PKG, D-C, W-C,
... — any registered scheme).  Alongside the delegate it feeds a monitor
SpaceSaving sketch, and at fixed per-source checkpoints it asks its
:class:`~repro.adaptive.policy.SwitchPolicy` whether the observed skew still
matches the delegate's rung on the scheme ladder.  A switch builds the new
scheme *from the live state of the old one* via the ``export_state`` /
``adopt_state`` contract — load vector, message counter, head table (seeded
from the monitor when the old delegate kept none), head-candidate caches —
so the new delegate continues mid-stream instead of cold-starting, and the
:class:`~repro.adaptive.tuner.ParameterTuner` retunes ``theta``/``d`` for it
from the same summary.

Determinism contract: checkpoints fire at exact per-source message counts
(multiples of ``check_interval``), and batches are split at those boundaries
— the same mechanism D-Choices uses for its solver checkpoints — so the
scalar, batched and columnar paths observe identical monitor/load state at
every decision point and make identical switches.  Every move is priced
through the bound :class:`~repro.elasticity.accountant.MigrationCostAccountant`
as a ``switch:`` / ``retune:`` event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.adaptive.policy import DriftMetrics, SwitchPolicy
from repro.adaptive.tuner import ParameterTuner
from repro.analysis.bounds import theta_range
from repro.exceptions import ConfigurationError
from repro.partitioning.base import Partitioner
from repro.partitioning.head_tail import DEFAULT_SKETCH_SLACK
from repro.partitioning.registry import canonical_name, create_partitioner
from repro.sketches.space_saving import SpaceSaving
from repro.types import Key, RoutingDecision, WorkerId

#: Schemes whose constructor takes (theta, warmup_messages).
_HEAD_AWARE = frozenset({"D-C", "W-C", "RR", "FIXED-D"})
#: Schemes whose constructor requires a choice count.
_NEEDS_CHOICES = frozenset({"FIXED-D", "GREEDY-D"})


@dataclass(frozen=True, slots=True)
class SwitchRecord:
    """One applied move of a single source's delegate."""

    position: int  #: messages this source had routed when the move fired
    from_scheme: str
    to_scheme: str
    theta: float | None  #: tuner-chosen theta of the new delegate (None = default)
    p1: float
    head_cardinality: int
    imbalance: float
    keys_moved: int
    entries_migrated: int
    head_keys_preserved: int

    @property
    def is_retune(self) -> bool:
        return self.from_scheme == self.to_scheme

    def to_dict(self) -> dict[str, Any]:
        return {
            "position": self.position,
            "from_scheme": self.from_scheme,
            "to_scheme": self.to_scheme,
            "theta": self.theta,
            "p1": self.p1,
            "head_cardinality": self.head_cardinality,
            "imbalance": self.imbalance,
            "keys_moved": self.keys_moved,
            "entries_migrated": self.entries_migrated,
            "head_keys_preserved": self.head_keys_preserved,
        }


class AdaptivePartitioner(Partitioner):
    """Scheme-switching partitioner (symbol ``AD``).

    Parameters
    ----------
    num_workers, seed:
        As for every scheme; the seed is shared with every delegate so all
        sources (and successive delegates) agree on candidate workers.
    policy:
        A :class:`SwitchPolicy`, a CLI spec string for
        :meth:`SwitchPolicy.parse`, or None for the defaults.
    initial_scheme:
        First delegate; defaults to the policy ladder's first rung.
    check_interval:
        Per-source messages between two policy checkpoints.
    theta:
        Head threshold of the *monitor* sketch (default ``1/(5n)``, tracking
        ``n`` across rescales); delegates get tuner-proposed thetas.
    warmup_messages:
        Messages before the first checkpoint may act, and the warmup handed
        to head-aware delegates built at stream start.
    retune_ratio:
        Rebuild a head-aware delegate in place (same scheme, new theta) when
        the tuner's proposal drifts from the delegate's theta by more than
        this factor; 0 disables in-place retuning.

    Examples
    --------
    >>> ad = AdaptivePartitioner(num_workers=8, seed=1, check_interval=500,
    ...                          warmup_messages=100)
    >>> for i in range(3000):
    ...     _ = ad.route("hot" if i % 3 else f"k{i}")
    >>> ad.current_scheme in ("PKG", "D-C", "W-C")
    True
    """

    name = "AD"

    def __init__(
        self,
        num_workers: int,
        seed: int = 0,
        policy: SwitchPolicy | str | None = None,
        initial_scheme: str | None = None,
        check_interval: int = 2000,
        theta: float | None = None,
        warmup_messages: int = 100,
        tuner: ParameterTuner | None = None,
        retune_ratio: float = 2.0,
    ) -> None:
        super().__init__(num_workers, seed)
        if isinstance(policy, str):
            policy = SwitchPolicy.parse(policy)
        self._policy = policy if policy is not None else SwitchPolicy()
        if check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        if warmup_messages < 0:
            raise ConfigurationError(
                f"warmup_messages must be >= 0, got {warmup_messages}"
            )
        if retune_ratio < 0.0:
            raise ConfigurationError(
                f"retune_ratio must be >= 0, got {retune_ratio}"
            )
        self._check_interval = check_interval
        self._warmup_messages = warmup_messages
        self._theta_defaulted = theta is None
        if theta is None:
            theta = theta_range(num_workers).default
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        self._theta = theta
        self._tuner = tuner if tuner is not None else ParameterTuner()
        self._retune_ratio = retune_ratio
        self._monitor = SpaceSaving.for_threshold(theta, slack=DEFAULT_SKETCH_SLACK)
        scheme = initial_scheme if initial_scheme is not None else self._policy.ladder[0]
        self._current_scheme = canonical_name(scheme)
        self._delegate_theta: float | None = None
        self._delegate = self._build_delegate(self._current_scheme, None)
        self._switch_events: list[SwitchRecord] = []
        self._last_check = -1
        self._last_move = 0
        # Columnar dictionary, stashed so switch accounting can decode the
        # monitor's ids back to keys (candidates hash key bytes).
        self._dict = None
        # Engine-bound migration accounting (optional): moves are priced as
        # records with offset ``position * offset_scale + offset_base``,
        # mapping the per-source position to an approximate stream offset.
        self._accountant = None
        self._offset_scale = 1
        self._offset_base = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def current_scheme(self) -> str:
        """Canonical name of the delegate currently routing."""
        return self._current_scheme

    @property
    def delegate(self) -> Partitioner:
        return self._delegate

    @property
    def policy(self) -> SwitchPolicy:
        return self._policy

    @property
    def theta(self) -> float:
        """The monitor sketch's head threshold."""
        return self._theta

    @property
    def local_loads(self) -> list[int]:
        return self._delegate.local_loads

    @property
    def messages_routed(self) -> int:
        return self._delegate.messages_routed

    def switch_events(self) -> tuple[SwitchRecord, ...]:
        """Every move this source has applied, in stream order."""
        return tuple(self._switch_events)

    def current_head(self) -> dict[Key, int]:
        """The monitor's current head estimate, decoded to the key namespace."""
        head = self._monitor.heavy_hitters(self._theta)
        if self._dict is not None:
            key_of = self._dict.key_of
            return {key_of(kid): count for kid, count in head.items()}
        return head

    def bind_accountant(
        self, accountant, offset_scale: int = 1, offset_base: int = 0
    ) -> None:
        """Route every future move through ``accountant`` (engine hook)."""
        self._accountant = accountant
        self._offset_scale = offset_scale
        self._offset_base = offset_base

    # ------------------------------------------------------------------ #
    # routing: delegate + monitor feed + checkpointing
    # ------------------------------------------------------------------ #
    def route(self, key: Key) -> WorkerId:
        self._checkpoint()
        self._monitor.add(key)
        return self._delegate.route(key)

    def route_with_decision(self, key: Key) -> RoutingDecision:
        self._checkpoint()
        self._monitor.add(key)
        return self._delegate.route_with_decision(key)

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        total = len(keys)
        if total == 0:
            return []
        out: list[WorkerId] = []
        interval = self._check_interval
        position = 0
        while position < total:
            self._checkpoint()
            routed = self._delegate.messages_routed
            remainder = routed % interval
            span = min(total - position, interval - remainder if remainder else interval)
            block = keys if (position == 0 and span == total) else keys[position : position + span]
            self._monitor.add_all(block)
            out.extend(self._delegate.route_batch(block, head_flags=head_flags))
            position += span
        return out

    def route_batch_columnar(self, batch, head_flags=None):
        total = len(batch)
        if total == 0:
            return []
        self._dict = batch.dictionary
        out: list[WorkerId] = []
        interval = self._check_interval
        position = 0
        while position < total:
            self._checkpoint()
            routed = self._delegate.messages_routed
            remainder = routed % interval
            span = min(total - position, interval - remainder if remainder else interval)
            part = batch if (position == 0 and span == total) else batch.slice(
                position, position + span
            )
            self._monitor.add_all(part.ids.tolist())
            out.extend(self._delegate.route_batch_columnar(part, head_flags=head_flags))
            position += span
        return out

    def _select(self, key: Key) -> RoutingDecision:  # pragma: no cover
        # Never reached: every public entry point delegates.  Kept to satisfy
        # the abstract contract.
        return self._delegate._select(key)

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        return self._delegate.key_candidates(key)

    # ------------------------------------------------------------------ #
    # checkpoints and moves
    # ------------------------------------------------------------------ #
    def _checkpoint(self) -> None:
        routed = self._delegate.messages_routed
        if routed == 0 or routed % self._check_interval or routed == self._last_check:
            return
        self._last_check = routed
        self._evaluate(routed)

    def _evaluate(self, routed: int) -> None:
        monitor = self._monitor
        total = monitor.total
        if total < max(1, self._warmup_messages):
            return
        if routed - self._last_move < self._policy.min_dwell:
            return
        cardinality, hottest = monitor.head_signature(self._theta)
        p1 = hottest / total
        loads = self._delegate.local_loads
        mean = sum(loads) / len(loads)
        imbalance = max(0.0, (max(loads) - mean) / mean) if mean > 0 else 0.0
        metrics = DriftMetrics(
            p1=p1,
            head_cardinality=cardinality,
            imbalance=imbalance,
            num_workers=self._delegate.num_workers,
            messages=routed,
        )
        target = self._policy.decide(metrics, self._current_scheme)
        if target != self._current_scheme:
            self._move(target, routed, metrics)
            return
        if self._retune_ratio and self._current_scheme in _HEAD_AWARE:
            proposal = self._tuner.propose_theta(monitor, metrics.num_workers)
            current = self._delegate_theta
            if proposal is not None and current is not None:
                ratio = proposal / current if current > 0 else float("inf")
                if ratio >= self._retune_ratio or ratio <= 1.0 / self._retune_ratio:
                    self._move(self._current_scheme, routed, metrics)

    def _delegate_options(self, scheme: str, theta: float | None) -> dict[str, Any]:
        options: dict[str, Any] = {}
        if scheme in _HEAD_AWARE:
            options["warmup_messages"] = self._warmup_messages
            if theta is not None:
                options["theta"] = theta
        if scheme in _NEEDS_CHOICES:
            solution = self._tuner.propose_choices(
                self._monitor,
                theta if theta is not None else self._theta,
                self.num_workers,
            )
            options["num_choices"] = max(2, solution.num_choices)
        return options

    def _build_delegate(self, scheme: str, theta: float | None) -> Partitioner:
        self._delegate_theta = theta
        return create_partitioner(
            scheme,
            num_workers=self._num_workers,
            seed=self._seed,
            **self._delegate_options(scheme, theta),
        )

    def _move(self, target: str, routed: int, metrics: DriftMetrics) -> None:
        """Swap the delegate for ``target``, transplanting its live state."""
        old = self._delegate
        state = old.export_state()
        if "sketch" not in state:
            # The old delegate kept no head table: seed the new one from the
            # monitor so it starts hot instead of re-learning the head.
            state["sketch"] = self._monitor.export_state()
            if self._dict is not None:
                state["id_dictionary"] = self._dict
        theta = (
            self._tuner.propose_theta(self._monitor, metrics.num_workers)
            if target in _HEAD_AWARE
            else None
        )
        new = self._build_delegate(target, theta)
        new.adopt_state(state)
        keys_moved, entries_migrated = self._move_costs(old, new)
        record = SwitchRecord(
            position=routed,
            from_scheme=self._current_scheme,
            to_scheme=target,
            theta=theta,
            p1=metrics.p1,
            head_cardinality=metrics.head_cardinality,
            imbalance=metrics.imbalance,
            keys_moved=keys_moved,
            entries_migrated=entries_migrated,
            head_keys_preserved=metrics.head_cardinality,
        )
        self._switch_events.append(record)
        if self._accountant is not None:
            kind = "retune" if record.is_retune else "switch"
            self._accountant.record_switch(
                offset=routed * self._offset_scale + self._offset_base,
                description=f"{kind}:{record.from_scheme}->{record.to_scheme}",
                num_workers=metrics.num_workers,
                keys_moved=keys_moved,
                entries_migrated=entries_migrated,
                head_keys_preserved=record.head_keys_preserved,
            )
        self._delegate = new
        self._current_scheme = target
        self._last_move = routed

    def _move_costs(self, old: Partitioner, new: Partitioner) -> tuple[int, int]:
        """Keys whose candidate sets change across the swap, and the state
        entries that must move with them.

        Measured over the monitor's monitored keys — the only keys hot
        enough for their placement to differ between two rungs of a ladder
        sharing the two-choice tail.  Each moved key is charged one state
        entry per worker it could previously reach (its old candidate set):
        that is the operator state that must be consolidated onto the new
        candidates.
        """
        decode = self._dict.key_of if self._dict is not None else None
        keys_moved = 0
        entries_migrated = 0
        for entry in self._monitor.entries():
            key = decode(entry.key) if decode is not None else entry.key
            before = frozenset(old.key_candidates(key))
            if not before:
                continue
            after = frozenset(new.key_candidates(key))
            if before != after:
                keys_moved += 1
                entries_migrated += len(before)
        return keys_moved, entries_migrated

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        super().reset()
        self._monitor.reset()
        self._delegate.reset()
        self._last_check = -1
        self._last_move = 0
        self._dict = None
        # The switch log survives a reset: it is this source's history, read
        # by the engine after the run (a rehash-policy rescale resets the
        # sources mid-stream and must not erase it).

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        self._delegate.rescale(new_num_workers)
        if self._theta_defaulted:
            self._theta = theta_range(new_num_workers).default
            import math

            required = max(1, math.ceil(DEFAULT_SKETCH_SLACK / self._theta))
            if self._monitor.capacity < required:
                self._monitor.grow(required)

    # ------------------------------------------------------------------ #
    # transplantable state (AD itself can be a donor/adopter)
    # ------------------------------------------------------------------ #
    def _export_structures(self, state: dict) -> None:
        state["adaptive"] = {
            "current_scheme": self._current_scheme,
            "delegate_theta": self._delegate_theta,
            "delegate": self._delegate.export_state(),
            "monitor": self._monitor.export_state(),
            "last_check": self._last_check,
            "last_move": self._last_move,
            "switches": list(self._switch_events),
            "dictionary": self._dict,
        }

    def _adopt_structures(self, state) -> None:
        payload = state.get("adaptive")
        if payload is None:
            # Donor was a plain scheme: hand its state to the delegate and
            # seed the monitor from its sketch when it kept one.
            self._delegate.adopt_state(state)
            sketch_state = state.get("sketch")
            if sketch_state is not None:
                self._monitor = SpaceSaving.from_state(
                    sketch_state, capacity=max(self._monitor.capacity, int(sketch_state["capacity"]))
                )
            dictionary = state.get("id_dictionary")
            if dictionary is not None:
                self._dict = dictionary
            return
        self._current_scheme = payload["current_scheme"]
        self._delegate = self._build_delegate(
            self._current_scheme, payload["delegate_theta"]
        )
        self._delegate.adopt_state(payload["delegate"])
        self._monitor = SpaceSaving.from_state(payload["monitor"])
        self._last_check = payload["last_check"]
        self._last_move = payload["last_move"]
        self._switch_events = list(payload["switches"])
        self._dict = payload["dictionary"]


__all__ = ["AdaptivePartitioner", "SwitchRecord"]
