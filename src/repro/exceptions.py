"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses communicate which
subsystem rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters.

    Examples: a partitioner with fewer than one worker, a sketch with zero
    capacity, a Zipf workload with a non-positive exponent.
    """


class PartitioningError(ReproError):
    """A stream-partitioning operation failed.

    Raised, for instance, when a partitioner is asked to route a message
    before it has been bound to a set of workers.
    """


class SketchError(ReproError):
    """A frequency-estimation sketch was used incorrectly.

    Examples: querying a key type the sketch cannot hash, merging two
    summaries with incompatible capacities.
    """


class WorkloadError(ReproError):
    """A workload/dataset could not be generated or loaded."""


class ScenarioError(WorkloadError):
    """A scenario spec is invalid or its expected bounds were violated.

    Raised when a cataloged scenario is missing its required ``pattern``,
    ``seed`` or ``expected:`` block, references an unknown pattern name, or
    when a post-run assertion check fails.  Subclasses
    :class:`WorkloadError` because a scenario is a (declarative) workload.
    """


class SimulationError(ReproError):
    """The simulation or cluster engine reached an inconsistent state."""


class ClusterRuntimeError(ReproError, RuntimeError):
    """The multi-process cluster runtime failed.

    Covers shared-memory ring protocol violations (sequence gaps, oversized
    frames), startup failures and shutdown timeouts.  Subclasses
    :class:`RuntimeError` as well: runtime faults are operational errors,
    not configuration mistakes.
    """


class WorkerCrashError(ClusterRuntimeError):
    """A cluster worker process died or stopped heartbeating mid-run.

    Attributes
    ----------
    worker_id:
        The worker that failed (named in the message as well).
    partial:
        Whatever results were salvaged from the still-healthy workers, or
        ``None`` when nothing could be recovered.
    restarts:
        Supervised respawns performed before the run gave up (0 under a
        ``max_restarts=0`` strict configuration).
    """

    def __init__(
        self, worker_id: int, message: str, partial=None, restarts: int = 0
    ) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.partial = partial
        self.restarts = restarts


class AnalysisError(ReproError):
    """An analytical routine received parameters outside its domain.

    Example: solving for the number of choices ``d`` with an empty head or a
    negative imbalance tolerance.
    """
