"""Common value types shared across the library.

The paper models a stream as a sequence of messages ``<t, k, v>`` where ``t``
is a timestamp, ``k`` a key drawn from a skewed distribution and ``v`` an
opaque value.  :class:`Message` mirrors that triple.  Most of the library only
cares about the key, so APIs generally accept either a :class:`Message` or a
bare key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Union

#: Keys can be anything hashable; the paper uses URLs, words and cashtags.
Key = Hashable

#: Worker identifiers are indices into ``range(n)`` (a prefix of the naturals,
#: as in Section II-B of the paper).
WorkerId = int


@dataclass(frozen=True, slots=True)
class Message:
    """A single stream tuple ``<t, k, v>``.

    Attributes
    ----------
    timestamp:
        Logical or wall-clock time of the tuple.  The simulators use logical
        sequence numbers; the cluster simulator uses simulated seconds.
    key:
        Grouping key.  Routing decisions depend only on this field.
    value:
        Opaque payload carried along; never inspected by partitioners.
    """

    timestamp: float
    key: Key
    value: object = None


@dataclass(slots=True)
class RoutingDecision:
    """The outcome of routing one message.

    Returned by the simulation engine when detailed tracing is requested,
    and used by tests to assert properties of the grouping schemes.
    """

    key: Key
    worker: WorkerId
    #: Candidate workers the partitioner considered (e.g. the two PKG hashes,
    #: or the d candidates of Greedy-d).  Empty for schemes such as shuffle
    #: grouping that do not restrict candidates.
    candidates: tuple[WorkerId, ...] = ()
    #: True when the key was classified as a heavy hitter (head key) at the
    #: moment of routing.
    is_head: bool = False


@dataclass(slots=True)
class DatasetStats:
    """Summary statistics of a workload, mirroring Table I of the paper."""

    name: str
    symbol: str
    messages: int
    keys: int
    #: Probability (relative frequency) of the most frequent key, in [0, 1].
    p1: float
    description: str = ""

    def as_row(self) -> dict[str, Union[str, int, float]]:
        """Return the Table I row for this dataset."""
        return {
            "Dataset": self.name,
            "Symbol": self.symbol,
            "Messages": self.messages,
            "Keys": self.keys,
            "p1(%)": round(100.0 * self.p1, 2),
        }


@dataclass(slots=True)
class LoadSnapshot:
    """Per-worker load observed at a point in time.

    ``loads`` are absolute message counts; helper properties expose the
    normalised quantities used by the paper's imbalance definition.
    """

    time: float
    loads: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.loads)

    @property
    def normalized(self) -> list[float]:
        """Loads as fractions of the total (zero-safe)."""
        total = self.total
        if total == 0:
            return [0.0 for _ in self.loads]
        return [load / total for load in self.loads]

    @property
    def imbalance(self) -> float:
        """``I(t) = max_w L_w(t) - avg_w L_w(t)`` over normalised loads."""
        normalized = self.normalized
        if not normalized:
            return 0.0
        return max(0.0, max(normalized) - sum(normalized) / len(normalized))
