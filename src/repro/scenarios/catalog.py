"""The scenario catalog: named, seeded traffic patterns with expectations.

Every entry below is a :class:`~repro.scenarios.spec.ScenarioSpec` written
as the YAML-shaped mapping the spec parser accepts, so the catalog doubles
as living documentation of the spec format.  All cataloged scenarios carry
a non-empty ``expected:`` block — the catalog is validated at import time
and a scenario without bounds is a hard :class:`ScenarioError`, never a
silent skip.

The bounds were measured empirically: each scenario was run at the tiny
and quick scales for the catalog schemes (PKG, D-C, W-C) and the bounds
set with ~2x headroom over the worst observed value, so they catch real
regressions (a scheme suddenly replicating keys without bound, a balance
collapse under churn) without flaking on RNG-level wiggle.  The pytest
suite under ``tests/scenarios/`` re-checks every bound at the tiny scale
on every CI run.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.exceptions import ScenarioError
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workload import ScenarioWorkload
from repro.simulation.results import SimulationResult

#: YAML-shaped catalog entries (see ScenarioSpec.from_dict for the schema).
#: ``pattern`` and ``seed`` are required; ``expected`` is required *here*
#: because these are cataloged scenarios.
_CATALOG_ENTRIES: tuple[Mapping[str, Any], ...] = (
    {
        "name": "flash_crowd",
        "pattern": "flash_crowd",
        "seed": 1601,
        "description": (
            "Mild Zipf baseline until a cold key spikes to 25% of all "
            "traffic and decays back — a breaking-news flash crowd."
        ),
        "truth": {"exponent": 0.9, "start": 0.3, "peak_share": 0.25},
        "expected": {
            # Worst measured (tiny+quick, PKG/D-C/W-C): imb 0.0003,
            # rep 1.77, p99 1.002.
            "max_imbalance": 0.01,
            "max_replication": 2.05,
            "max_p99_load_factor": 1.15,
        },
    },
    {
        "name": "hot_key_churn",
        "pattern": "hot_key_churn",
        "seed": 1602,
        "description": (
            "Zipf skew whose hot-key identities rotate every epoch — "
            "yesterday's hottest key is cold today."
        ),
        "truth": {"exponent": 1.3, "num_epochs": 8, "churn_ranks": 20},
        "expected": {
            # Worst measured: imb 0.0096, rep 1.69, p99 1.14.
            "max_imbalance": 0.03,
            "max_replication": 2.05,
            "max_p99_load_factor": 1.4,
        },
    },
    {
        "name": "diurnal_cycle",
        "pattern": "diurnal_cycle",
        "seed": 1603,
        "description": (
            "Skew oscillating between calm nights (Zipf 0.6) and peaked "
            "days (Zipf 1.5) over two full cycles."
        ),
        "truth": {"low_exponent": 0.6, "high_exponent": 1.5, "num_cycles": 2},
        "expected": {
            # D-C/W-C stay near-perfect; PKG drifts at the daily peaks
            # (worst measured imb 0.034, p99 1.54 at the quick scale).
            "max_imbalance": 0.015,
            "max_replication": 2.05,
            "max_p99_load_factor": 1.2,
            "per_scheme": {
                "PKG": {"max_imbalance": 0.07, "max_p99_load_factor": 2.1},
            },
        },
    },
    {
        "name": "key_space_growth",
        "pattern": "key_space_growth",
        "seed": 1604,
        "description": (
            "The active key space grows geometrically from 5% to 100% of "
            "the keys over the stream — an onboarding curve."
        ),
        "truth": {"exponent": 1.1, "initial_fraction": 0.05},
        "expected": {
            # Early epochs have few active keys, which PKG's two choices
            # cannot fully smooth (worst measured imb 0.035, p99 1.55).
            "max_imbalance": 0.015,
            "max_replication": 2.05,
            "max_p99_load_factor": 1.2,
            "per_scheme": {
                "PKG": {"max_imbalance": 0.07, "max_p99_load_factor": 2.1},
            },
        },
    },
    {
        "name": "single_key_flood",
        "pattern": "single_key_flood",
        "seed": 1605,
        "description": (
            "Adversarial flood: one key carries 40% of the traffic for the "
            "whole stream — beyond PKG's two-choice guarantee."
        ),
        "truth": {"flood_share": 0.4, "tail_exponent": 0.7},
        "expected": {
            # D-C/W-C split the flood across d >= 5 candidates and stay
            # balanced; PKG can only split it two ways, so roughly 20% of
            # the stream pins each of two workers (worst measured imb
            # 0.143, p99 3.28 at 16 workers).
            "max_imbalance": 0.02,
            "max_replication": 2.05,
            "max_p99_load_factor": 1.2,
            "per_scheme": {
                "PKG": {"max_imbalance": 0.3, "max_p99_load_factor": 4.5},
            },
        },
    },
    {
        "name": "drift_mixture",
        "pattern": "drift_mixture",
        "seed": 1606,
        "description": (
            "Traffic migrates gradually from one shuffled Zipf population "
            "to a disjoint one — slow-motion concept drift."
        ),
        "truth": {"exponent": 1.2, "num_epochs": 10},
        "expected": {
            # Worst measured: PKG imb 0.028 / p99 1.45; D-C/W-C <= 0.008.
            "max_imbalance": 0.02,
            "max_replication": 2.05,
            "max_p99_load_factor": 1.2,
            "per_scheme": {
                "PKG": {"max_imbalance": 0.06, "max_p99_load_factor": 2.0},
                # AD starts on PKG and trails its first switch; worst
                # measured p99 1.253 (quick scale, default knobs).
                "AD": {"max_p99_load_factor": 1.5},
            },
        },
    },
    {
        "name": "bursty_flash_crowd",
        "pattern": "flash_crowd",
        "seed": 1607,
        "description": (
            "The flash-crowd truth rendered bursty (each event repeated 4x "
            "back-to-back) — same popularity, clumped arrivals."
        ),
        "truth": {"exponent": 0.9, "start": 0.3, "peak_share": 0.25},
        "render": {"style": "bursty", "burst_length": 4},
        "expected": {
            # Worst measured: imb 0.0002, rep 1.75, p99 1.002 — bursts do
            # not break balance when per-key totals keep the truth's mass.
            "max_imbalance": 0.01,
            "max_replication": 2.05,
            "max_p99_load_factor": 1.15,
        },
    },
)


def _build_catalog() -> dict[str, ScenarioSpec]:
    catalog: dict[str, ScenarioSpec] = {}
    for entry in _CATALOG_ENTRIES:
        spec = ScenarioSpec.from_dict(entry)
        if spec.name in catalog:
            raise ScenarioError(f"duplicate scenario name {spec.name!r} in catalog")
        # Cataloged scenarios MUST carry expected bounds — fail loudly now,
        # at import, not when CI quietly runs zero assertions.
        catalog[spec.name] = spec.validate(require_expected=True)
    return catalog


#: Scenario name -> validated spec.  Import-time validation guarantees every
#: entry resolves (pattern, render) and declares at least one expected bound.
CATALOG: dict[str, ScenarioSpec] = _build_catalog()


def list_scenarios() -> list[str]:
    """Names of all cataloged scenarios, in catalog order."""
    return list(CATALOG)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a cataloged scenario; unknown names fail loudly."""
    try:
        return CATALOG[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; cataloged scenarios: "
            f"{list_scenarios()}"
        ) from None


def build_workload(
    scenario: str | ScenarioSpec, num_messages: int, num_keys: int
) -> ScenarioWorkload:
    """Render a scenario (by name or spec) at a concrete scale."""
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    return ScenarioWorkload(spec, num_messages=num_messages, num_keys=num_keys)


def check_result(
    spec: ScenarioSpec, result: SimulationResult, *, scheme: str | None = None
) -> list[str]:
    """Compare a simulation result against the spec's expected bounds.

    Returns the (possibly empty) list of violations; raises
    :class:`ScenarioError` when the spec has no bounds to check — a
    scenario silently asserting nothing is exactly the failure mode the
    catalog exists to prevent.
    """
    if spec.expected is None or spec.expected.is_empty():
        raise ScenarioError(
            f"scenario {spec.name!r} has no expected: block to check "
            f"against — cataloged scenarios must declare bounds"
        )
    return spec.expected.check(
        imbalance=result.final_imbalance,
        replication=result.replication_factor,
        p99_load_factor=result.p99_load_factor,
        scheme=scheme if scheme is not None else result.scheme,
    )


def assert_result(
    spec: ScenarioSpec, result: SimulationResult, *, scheme: str | None = None
) -> None:
    """Like :func:`check_result` but raising on any violation."""
    violations = check_result(spec, result, scheme=scheme)
    if violations:
        raise ScenarioError(
            f"scenario {spec.name!r} violated its expected bounds under "
            f"scheme {scheme or result.scheme}: " + "; ".join(violations)
        )
