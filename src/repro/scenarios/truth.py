"""Truth layer of the scenario catalog: key-popularity processes.

A *truth* describes **what the traffic is** — which keys exist and how
popular each one is at every point of the stream — without saying anything
about how the messages arrive.  Truths are pure probability processes: they
yield a sequence of epochs, each an ``(epoch_length, probabilities)`` pair
where ``probabilities`` is a distribution over the integer key space
``1 .. num_keys``.  Turning a truth into an actual arrival sequence (order,
burstiness, duplication) is the *render* layer's job
(:mod:`repro.scenarios.render`), so one truth can be rendered several ways
— the design borrowed from the truth→render split of synthetic-data
generators (see ``docs/scenarios.md``).

Every truth draws its internal randomness (hot-key identities, churn
choices) from the RNG it is handed; the scenario workload seeds that RNG
with a seed derived from ``(scenario_name, "truth", seed)``, so truth and
render randomness never correlate.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import ScenarioError

#: One epoch of a truth process: (number of messages, key probabilities).
Epoch = tuple[int, np.ndarray]


def _zipf_weights(num_keys: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, num_keys + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _epoch_lengths(num_messages: int, num_epochs: int) -> list[int]:
    base = num_messages // num_epochs
    lengths = [base] * num_epochs
    lengths[-1] += num_messages - base * num_epochs
    return [length for length in lengths if length > 0]


class Truth(abc.ABC):
    """Abstract key-popularity process over the key space ``1..num_keys``."""

    @abc.abstractmethod
    def epochs(
        self, num_messages: int, num_keys: int, rng: np.random.Generator
    ) -> Iterator[Epoch]:
        """Yield ``(epoch_length, probabilities)`` pairs covering the stream.

        The lengths must sum to ``num_messages`` and every probability
        vector must cover the same support ``1..num_keys`` (keys may carry
        zero mass — e.g. not-yet-grown keys).
        """


class StaticZipfTruth(Truth):
    """Stationary Zipf popularity — the paper's ZF baseline as a truth."""

    def __init__(self, exponent: float = 1.2) -> None:
        self.exponent = exponent

    def epochs(self, num_messages, num_keys, rng):
        yield num_messages, _zipf_weights(num_keys, self.exponent)


class FlashCrowdTruth(Truth):
    """A previously-cold key suddenly takes a large share of the traffic.

    The stream starts as a plain Zipf; at ``start`` (fraction of the
    stream) one cold key — chosen by the truth RNG from the bottom half of
    the ranking — spikes to ``peak_share`` of all traffic, then decays
    geometrically back over ``num_decay_epochs`` epochs.  Models a
    breaking-news page or a viral post.
    """

    def __init__(
        self,
        exponent: float = 0.9,
        start: float = 0.3,
        peak_share: float = 0.25,
        num_decay_epochs: int = 6,
    ) -> None:
        if not 0.0 < start < 1.0:
            raise ScenarioError(f"flash-crowd start must be in (0, 1), got {start}")
        if not 0.0 < peak_share < 1.0:
            raise ScenarioError(
                f"flash-crowd peak_share must be in (0, 1), got {peak_share}"
            )
        self.exponent = exponent
        self.start = start
        self.peak_share = peak_share
        self.num_decay_epochs = max(1, num_decay_epochs)

    def epochs(self, num_messages, num_keys, rng):
        base = _zipf_weights(num_keys, self.exponent)
        # The crowd key is cold before the flash: bottom half of the ranking.
        crowd_key = int(rng.integers(num_keys // 2, num_keys))
        calm = int(round(num_messages * self.start))
        if calm > 0:
            yield calm, base
        remaining = num_messages - calm
        if remaining <= 0:
            return
        share = self.peak_share
        for length in _epoch_lengths(remaining, self.num_decay_epochs):
            spiked = base * (1.0 - share)
            spiked[crowd_key] += share
            yield length, spiked
            share *= 0.5  # geometric decay back towards the base truth


class HotKeyChurnTruth(Truth):
    """The *identity* of the hot keys rotates every epoch.

    Within an epoch keys follow a Zipf law, but the mapping from rank to
    key identity is re-drawn for the top ``churn_ranks`` ranks at every
    epoch boundary — yesterday's hottest key is cold today.  The pure-truth
    formulation of the drift machinery stressing the SpaceSaving head.
    """

    def __init__(
        self, exponent: float = 1.3, num_epochs: int = 8, churn_ranks: int = 20
    ) -> None:
        self.exponent = exponent
        self.num_epochs = max(1, num_epochs)
        self.churn_ranks = max(1, churn_ranks)

    def epochs(self, num_messages, num_keys, rng):
        weights = _zipf_weights(num_keys, self.exponent)
        mapping = np.arange(num_keys)
        # Replacements are drawn from *outside* the top ranks so the swap
        # below stays a permutation even when the same identity is drawn
        # in consecutive epochs.
        churn = min(self.churn_ranks, num_keys // 2) or 1
        for epoch, length in enumerate(
            _epoch_lengths(num_messages, self.num_epochs)
        ):
            if epoch > 0 and num_keys > 1:
                replacements = churn + rng.choice(
                    num_keys - churn, size=churn, replace=False
                )
                mapping = mapping.copy()
                top = mapping[:churn].copy()
                mapping[:churn] = mapping[replacements]
                mapping[replacements] = top
            probabilities = np.zeros(num_keys)
            probabilities[mapping] = weights
            yield length, probabilities


class DiurnalCycleTruth(Truth):
    """Skew oscillates sinusoidally between a calm and a peaked regime.

    Models the day/night cycle of production traffic: overnight the stream
    is mild (``low_exponent``), at the daily peak a few keys dominate
    (``high_exponent``).  ``num_cycles`` full days are squeezed into the
    stream, sampled at ``epochs_per_cycle`` points.
    """

    def __init__(
        self,
        low_exponent: float = 0.6,
        high_exponent: float = 1.5,
        num_cycles: int = 2,
        epochs_per_cycle: int = 8,
    ) -> None:
        if high_exponent < low_exponent:
            raise ScenarioError(
                "diurnal cycle needs high_exponent >= low_exponent, got "
                f"{high_exponent} < {low_exponent}"
            )
        self.low_exponent = low_exponent
        self.high_exponent = high_exponent
        self.num_cycles = max(1, num_cycles)
        self.epochs_per_cycle = max(2, epochs_per_cycle)

    def epochs(self, num_messages, num_keys, rng):
        total_epochs = self.num_cycles * self.epochs_per_cycle
        amplitude = (self.high_exponent - self.low_exponent) / 2.0
        midpoint = (self.high_exponent + self.low_exponent) / 2.0
        for epoch, length in enumerate(_epoch_lengths(num_messages, total_epochs)):
            phase = 2.0 * math.pi * epoch / self.epochs_per_cycle
            exponent = midpoint - amplitude * math.cos(phase)
            yield length, _zipf_weights(num_keys, exponent)


class KeySpaceGrowthTruth(Truth):
    """The active key space grows geometrically over the stream.

    Epoch ``e`` draws from a Zipf law over only the first ``K_e`` keys,
    with ``K_e`` growing from ``initial_fraction * num_keys`` to the full
    key space — the onboarding curve of a growing product, stressing
    partitioners whose state was sized for the early key space.
    """

    def __init__(
        self,
        exponent: float = 1.1,
        num_epochs: int = 8,
        initial_fraction: float = 0.05,
    ) -> None:
        if not 0.0 < initial_fraction <= 1.0:
            raise ScenarioError(
                f"initial_fraction must be in (0, 1], got {initial_fraction}"
            )
        self.exponent = exponent
        self.num_epochs = max(2, num_epochs)
        self.initial_fraction = initial_fraction

    def epochs(self, num_messages, num_keys, rng):
        lengths = _epoch_lengths(num_messages, self.num_epochs)
        start = max(1, int(round(num_keys * self.initial_fraction)))
        # Geometric growth schedule reaching the full key space at the end.
        ratio = (num_keys / start) ** (1.0 / max(1, len(lengths) - 1))
        for epoch, length in enumerate(lengths):
            active = min(num_keys, max(1, int(round(start * ratio**epoch))))
            probabilities = np.zeros(num_keys)
            probabilities[:active] = _zipf_weights(active, self.exponent)
            yield length, probabilities


class SingleKeyFloodTruth(Truth):
    """Adversarial flood: one key takes a fixed, large share throughout.

    The worst case for single-choice hashing — ``flood_share`` of all
    traffic lands on one key drawn by the truth RNG; the rest follows a
    mild Zipf tail.  Key-grouping's imbalance lower bound equals the flood
    share; multi-choice schemes split it across their candidates.
    """

    def __init__(self, flood_share: float = 0.4, tail_exponent: float = 0.7) -> None:
        if not 0.0 < flood_share < 1.0:
            raise ScenarioError(
                f"flood_share must be in (0, 1), got {flood_share}"
            )
        self.flood_share = flood_share
        self.tail_exponent = tail_exponent

    def epochs(self, num_messages, num_keys, rng):
        flood_key = int(rng.integers(0, num_keys))
        probabilities = _zipf_weights(num_keys, self.tail_exponent)
        probabilities *= 1.0 - self.flood_share
        probabilities[flood_key] += self.flood_share
        yield num_messages, probabilities


class DriftMixtureTruth(Truth):
    """Traffic migrates gradually from one key population to another.

    Two disjoint Zipf populations (the first and second half of the key
    space, independently shuffled by the truth RNG) are mixed with a weight
    that slides from 0 to 1 across the stream — a slow-motion concept
    drift, unlike the hard epoch cuts of :class:`HotKeyChurnTruth`.
    """

    def __init__(self, exponent: float = 1.2, num_epochs: int = 10) -> None:
        self.exponent = exponent
        self.num_epochs = max(2, num_epochs)

    def epochs(self, num_messages, num_keys, rng):
        half = max(1, num_keys // 2)
        old = np.zeros(num_keys)
        old[rng.permutation(half)] = _zipf_weights(half, self.exponent)
        new = np.zeros(num_keys)
        new[half + rng.permutation(num_keys - half)] = _zipf_weights(
            num_keys - half, self.exponent
        )
        lengths = _epoch_lengths(num_messages, self.num_epochs)
        for epoch, length in enumerate(lengths):
            weight = epoch / max(1, len(lengths) - 1)
            yield length, (1.0 - weight) * old + weight * new


#: Pattern name -> truth factory.  The catalog's required ``pattern`` field
#: resolves here; factories accept the spec's ``truth_options`` as kwargs.
PATTERNS: dict[str, Callable[..., Truth]] = {
    "static_zipf": StaticZipfTruth,
    "flash_crowd": FlashCrowdTruth,
    "hot_key_churn": HotKeyChurnTruth,
    "diurnal_cycle": DiurnalCycleTruth,
    "key_space_growth": KeySpaceGrowthTruth,
    "single_key_flood": SingleKeyFloodTruth,
    "drift_mixture": DriftMixtureTruth,
}


def make_truth(pattern: str, options: dict | None = None, *, scenario: str | None = None) -> Truth:
    """Instantiate the truth for ``pattern``; unknown names fail loudly.

    ``scenario`` (when given) names the offending spec in the error, per
    the fail-loudly contract of the scenario catalog.
    """
    factory = PATTERNS.get(pattern)
    if factory is None:
        prefix = f"scenario {scenario!r}: " if scenario else ""
        raise ScenarioError(
            f"{prefix}unknown pattern {pattern!r}; valid patterns: "
            f"{sorted(PATTERNS)}"
        )
    try:
        return factory(**(options or {}))
    except TypeError as exc:
        prefix = f"scenario {scenario!r}: " if scenario else ""
        raise ScenarioError(
            f"{prefix}invalid truth options for pattern {pattern!r}: {exc}"
        ) from exc
