"""Scenario workload: a spec + scale rendered as a first-class Workload.

:class:`ScenarioWorkload` plugs the truth→render pipeline into the
standard workload contracts — :meth:`keys`, :meth:`iter_batches` and
:meth:`iter_batches_columnar` — so every cataloged scenario runs unchanged
through ``route_stream``, the simulation engine and the dataflow runtime,
scalar, batched or columnar.

All three representations consume the same ``_draw_spans`` generator (the
single source of truth for RNG consumption), so the stream is byte-
identical for any chunking — the property suite pins this for all nine
schemes, including mid-stream rescale plans.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ScenarioError
from repro.scenarios.render import make_renderer
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.truth import make_truth
from repro.types import DatasetStats, Key
from repro.workloads.base import Workload


class ScenarioWorkload(Workload):
    """One rendered scenario at a concrete scale.

    Parameters
    ----------
    spec:
        The declarative scenario (pattern, seed, render, expected bounds).
    num_messages, num_keys:
        The scale: stream length and key-space size.  Scenarios declare
        *relative* structure (epoch fractions, shares); the experiment
        scale supplies absolute sizes, so one catalog serves tiny CI
        smokes and paper-scale sweeps alike.

    The truth RNG is seeded with ``derive_seed(name, "truth", seed)`` and
    the render RNG with ``derive_seed(name, "render", seed)``; iterating
    twice therefore yields the same stream, and re-rendering the same
    truth with a different style keeps the popularity process fixed.
    """

    symbol = "SCN"

    def __init__(self, spec: ScenarioSpec, num_messages: int, num_keys: int) -> None:
        if num_messages < 0:
            raise ScenarioError(
                f"scenario {spec.name!r}: num_messages must be >= 0, got {num_messages}"
            )
        if num_keys < 1:
            raise ScenarioError(
                f"scenario {spec.name!r}: num_keys must be >= 1, got {num_keys}"
            )
        # Resolve pattern and render eagerly — an invalid spec must fail at
        # construction, not mid-stream.
        self._truth = make_truth(
            spec.pattern, dict(spec.truth_options), scenario=spec.name
        )
        self._renderer = make_renderer(
            spec.render.style, dict(spec.render.options), scenario=spec.name
        )
        self._spec = spec
        self._num_messages = num_messages
        self._num_keys = num_keys

    @property
    def spec(self) -> ScenarioSpec:
        return self._spec

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def num_messages(self) -> int:
        return self._num_messages

    @property
    def num_keys(self) -> int:
        return self._num_keys

    def _draw_spans(self) -> Iterator[np.ndarray]:
        """The stream as key arrays — single source of RNG consumption."""
        truth_rng = np.random.default_rng(self._spec.component_seed("truth"))
        render_rng = np.random.default_rng(self._spec.component_seed("render"))
        epochs = self._truth.epochs(self._num_messages, self._num_keys, truth_rng)
        return self._renderer.spans(epochs, render_rng)

    def keys(self) -> Iterator[Key]:
        for span in self._draw_spans():
            yield from span.tolist()

    def iter_batches(self, batch_size: int = 8192) -> Iterator[list[Key]]:
        for span in self._draw_spans():
            values = span.tolist()
            for start in range(0, len(values), batch_size):
                yield values[start : start + batch_size]

    def iter_batches_columnar(self, batch_size=8192, dictionary=None):
        """Native columnar stream; ids are issued per draw span, so the id
        numbering is independent of ``batch_size``."""
        from repro.workloads.columnar import ColumnarBatch, KeyDictionary

        dictionary = dictionary if dictionary is not None else KeyDictionary()
        index = 0
        for span in self._draw_spans():
            ids = dictionary.intern_int_array(span)
            for start in range(0, span.size, batch_size):
                yield ColumnarBatch(
                    ids[start : start + batch_size], dictionary, index + start
                )
            index += span.size

    def stats(self) -> DatasetStats:
        return DatasetStats(
            name=f"scenario:{self._spec.name}",
            symbol=self.symbol,
            messages=self._num_messages,
            keys=self._num_keys,
            p1=float("nan"),
            description=(
                self._spec.description
                or f"{self._spec.pattern} truth rendered {self._spec.render.style}"
            ),
        )
