"""Render layer of the scenario catalog: truth → arrival sequence.

A *render* describes **how the traffic arrives** — the arrival order,
burstiness and duplication of the messages — for a popularity process it
knows nothing about.  Renderers consume the epochs of a
:class:`~repro.scenarios.truth.Truth` and emit numpy key arrays ("spans"),
drawing all randomness from a render RNG that is seeded independently of
the truth (``derive_seed(scenario_name, "render", seed)``), so the same
truth can be rendered several ways — and re-rendering with a different
style never changes what the keys *are*, only when they show up.

Determinism contract: a renderer's RNG consumption depends only on the
truth's epoch lengths and the render parameters — never on downstream
chunking — so the stream is byte-identical for every ``batch_size`` and
representation (scalar / batched / columnar), which the property suite
pins for every scheme.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import ScenarioError

#: Spans are drawn in fixed-size chunks so huge epochs never materialise at
#: once and the RNG consumption order is independent of consumer chunking.
_CHUNK = 200_000


class Renderer(abc.ABC):
    """Abstract arrival-order renderer."""

    @abc.abstractmethod
    def spans(
        self,
        epochs: "Iterator[tuple[int, np.ndarray]]",
        rng: np.random.Generator,
    ) -> Iterator[np.ndarray]:
        """Yield the stream as int64 key arrays (identities ``1..K``).

        The concatenation of all spans is the rendered stream; span
        boundaries are an implementation detail.
        """


class IidRenderer(Renderer):
    """Memoryless arrivals: every message drawn i.i.d. from the epoch truth.

    The render of the paper's synthetic experiments — no burstiness, no
    duplication; arrival order carries no information beyond the epoch
    schedule.
    """

    def spans(self, epochs, rng):
        for length, probabilities in epochs:
            support = np.arange(1, probabilities.size + 1)
            remaining = length
            while remaining > 0:
                size = min(_CHUNK, remaining)
                yield rng.choice(support, size=size, p=probabilities)
                remaining -= size


class BurstyRenderer(Renderer):
    """Run-length duplicated arrivals: each drawn event repeats back-to-back.

    Each underlying *event* is drawn from the truth and then emitted
    ``burst_length`` times consecutively — the repeat pattern of retries,
    fan-out republication and hiccuping producers.  Per-key *totals* keep
    the truth's expectations (every key's mass is scaled equally), but the
    arrival autocorrelation concentrates load into runs, stressing the
    local load estimates of two-choice schemes.
    """

    def __init__(self, burst_length: int = 4) -> None:
        if burst_length < 1:
            raise ScenarioError(
                f"burst_length must be >= 1, got {burst_length}"
            )
        self.burst_length = burst_length

    def spans(self, epochs, rng):
        burst = self.burst_length
        for length, probabilities in epochs:
            support = np.arange(1, probabilities.size + 1)
            remaining = length
            while remaining > 0:
                size = min(_CHUNK, remaining)
                events = rng.choice(
                    support, size=-(-size // burst), p=probabilities
                )
                yield np.repeat(events, burst)[:size]
                remaining -= size


class ShuffledEpochRenderer(Renderer):
    """Quota arrivals: exact per-epoch key counts, shuffled order.

    Each epoch's key counts are drawn once (multinomially) and the
    messages then arrive in a uniformly shuffled order — the *frequencies*
    carry no sampling noise beyond the multinomial draw, isolating a
    scheme's placement behaviour from draw-by-draw variance.
    """

    def spans(self, epochs, rng):
        for length, probabilities in epochs:
            remaining = length
            while remaining > 0:
                size = min(_CHUNK, remaining)
                counts = rng.multinomial(size, probabilities)
                span = np.repeat(np.arange(1, probabilities.size + 1), counts)
                rng.shuffle(span)
                yield span
                remaining -= size


#: Render style name -> renderer factory (kwargs from the spec's render
#: options).  ``iid`` is the default style of every cataloged scenario.
RENDERERS: dict[str, Callable[..., Renderer]] = {
    "iid": IidRenderer,
    "bursty": BurstyRenderer,
    "shuffled_epoch": ShuffledEpochRenderer,
}


def make_renderer(
    style: str, options: dict | None = None, *, scenario: str | None = None
) -> Renderer:
    """Instantiate the renderer for ``style``; unknown styles fail loudly."""
    factory = RENDERERS.get(style)
    if factory is None:
        prefix = f"scenario {scenario!r}: " if scenario else ""
        raise ScenarioError(
            f"{prefix}unknown render style {style!r}; valid styles: "
            f"{sorted(RENDERERS)}"
        )
    try:
        return factory(**(options or {}))
    except TypeError as exc:
        prefix = f"scenario {scenario!r}: " if scenario else ""
        raise ScenarioError(
            f"{prefix}invalid render options for style {style!r}: {exc}"
        ) from exc
