"""Declarative scenario specs: required pattern/seed, optional expected bounds.

A :class:`ScenarioSpec` is the YAML-shaped declaration of one traffic
scenario (the in-code catalog lives in :mod:`repro.scenarios.catalog`)::

    name: flash_crowd
    pattern: flash_crowd          # REQUIRED — truth pattern name
    seed: 42                      # REQUIRED — base seed of the scenario
    truth:                        # optional pattern parameter overrides
      peak_share: 0.25
    render:                       # optional arrival rendering (default iid)
      style: bursty
      burst_length: 4
    expected:                     # post-run assertions (REQUIRED for
      max_imbalance: 0.05         # cataloged scenarios — fail-loudly)
      max_replication: 2.5
      max_p99_load_factor: 1.6

``pattern`` and ``seed`` have **no defaults** — a spec without them fails
loudly at construction (:class:`~repro.exceptions.ScenarioError` naming
the scenario), mirroring the required ``pattern``/``seed`` contract of
TRADE-style synthetic-data modules.  Per-component seeds are derived
deterministically as ``derive_seed(name, component, seed)`` so truth and
render randomness never correlate and every scenario is reproducible from
its name and one integer.

The ``expected:`` block turns each scenario into a regression assertion:
after a simulation run, :meth:`ExpectedBounds.check` compares the realised
imbalance, key replication and p99 load factor against the declared
bounds.  The pytest suite under ``tests/scenarios/`` collects exactly
these checks for every cataloged scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import ScenarioError
from repro.workloads.base import derive_seed

#: Sentinel distinguishing "field absent" from any legitimate value.
_MISSING = object()


@dataclass(frozen=True, slots=True)
class RenderSpec:
    """How a scenario's truth is rendered into an arrival sequence."""

    style: str = "iid"
    options: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], *, scenario: str) -> "RenderSpec":
        extra = dict(payload)
        style = extra.pop("style", "iid")
        if not isinstance(style, str) or not style:
            raise ScenarioError(
                f"scenario {scenario!r}: render style must be a non-empty "
                f"string, got {style!r}"
            )
        return cls(style=style, options=extra)


@dataclass(frozen=True, slots=True)
class ExpectedBounds:
    """Post-run assertions of one scenario (the ``expected:`` block).

    Every bound is optional individually, but a cataloged scenario must
    declare at least one (enforced by :meth:`ScenarioSpec.validate`).

    Attributes
    ----------
    max_imbalance:
        Upper bound on the final imbalance ``I(m) = max - avg`` of the
        normalised worker loads.
    max_replication:
        Upper bound on the average key replication factor:
        worker-side ``(worker, key)`` state entries divided by the number
        of distinct keys routed (1.0 = key grouping, ≤ 2 = PKG, ...).
    max_p99_load_factor:
        Upper bound on the p99 of the per-worker loads divided by the mean
        load (1.0 = perfectly balanced).
    per_scheme:
        Optional per-scheme overrides, e.g. ``{"W-C": {"max_replication":
        6.0}}`` — schemes that legitimately replicate more (or balance
        better) than the catalog-wide bound.
    """

    max_imbalance: float | None = None
    max_replication: float | None = None
    max_p99_load_factor: float | None = None
    per_scheme: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    _BOUND_NAMES = ("max_imbalance", "max_replication", "max_p99_load_factor")

    def is_empty(self) -> bool:
        return all(getattr(self, name) is None for name in self._BOUND_NAMES)

    def bound(self, name: str, scheme: str | None = None) -> float | None:
        """The effective bound for ``scheme`` (override beats the default)."""
        if scheme is not None:
            override = self.per_scheme.get(scheme, {})
            if name in override:
                return float(override[name])
        return getattr(self, name)

    def check(
        self,
        *,
        imbalance: float,
        replication: float,
        p99_load_factor: float,
        scheme: str | None = None,
    ) -> list[str]:
        """Compare realised metrics against the bounds; return violations.

        An empty list means every declared bound held.  Each violation is
        a human-readable sentence naming the metric, the realised value
        and the declared bound.
        """
        realised = {
            "max_imbalance": imbalance,
            "max_replication": replication,
            "max_p99_load_factor": p99_load_factor,
        }
        violations = []
        for name in self._BOUND_NAMES:
            limit = self.bound(name, scheme)
            if limit is not None and realised[name] > limit:
                suffix = f" for scheme {scheme}" if scheme else ""
                violations.append(
                    f"{name}: {realised[name]:.6g} exceeds the declared "
                    f"bound {limit:.6g}{suffix}"
                )
        return violations

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], *, scenario: str) -> "ExpectedBounds":
        extra = dict(payload)
        kwargs: dict[str, Any] = {}
        for name in cls._BOUND_NAMES:
            if name in extra:
                kwargs[name] = float(extra.pop(name))
        per_scheme = extra.pop("per_scheme", {})
        unknown = sorted(extra)
        if unknown:
            raise ScenarioError(
                f"scenario {scenario!r}: unknown expected bounds {unknown}; "
                f"valid bounds: {list(cls._BOUND_NAMES)}"
            )
        return cls(per_scheme=per_scheme, **kwargs)


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One named traffic scenario: truth pattern + render + expectations."""

    name: str
    #: REQUIRED: truth pattern name (a key of ``repro.scenarios.truth.PATTERNS``).
    pattern: str
    #: REQUIRED: base seed; component seeds derive from (name, component, seed).
    seed: int | str
    truth_options: Mapping[str, Any] = field(default_factory=dict)
    render: RenderSpec = field(default_factory=RenderSpec)
    expected: ExpectedBounds | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"scenario name must be a non-empty string, got {self.name!r}")
        if not self.pattern or not isinstance(self.pattern, str):
            raise ScenarioError(
                f"scenario {self.name!r}: 'pattern' is required and must be "
                f"a non-empty string, got {self.pattern!r}"
            )
        if not isinstance(self.seed, (int, str)) or isinstance(self.seed, bool):
            raise ScenarioError(
                f"scenario {self.name!r}: 'seed' is required and must be an "
                f"int or string, got {self.seed!r}"
            )

    def component_seed(self, component: str) -> int:
        """Deterministic per-component seed: ``derive_seed(name, component, seed)``."""
        return derive_seed(self.name, component, self.seed)

    def validate(self, *, require_expected: bool = True) -> "ScenarioSpec":
        """Resolve the pattern/render and check the fail-loudly contract.

        Raises :class:`ScenarioError` naming the scenario when the pattern
        or render style is unknown, when their options are invalid, or —
        with ``require_expected`` (the catalog default) — when the
        ``expected:`` block is missing or empty.
        """
        from repro.scenarios.render import make_renderer
        from repro.scenarios.truth import make_truth

        make_truth(self.pattern, dict(self.truth_options), scenario=self.name)
        make_renderer(self.render.style, dict(self.render.options), scenario=self.name)
        if require_expected and (self.expected is None or self.expected.is_empty()):
            raise ScenarioError(
                f"scenario {self.name!r} has no expected: block; cataloged "
                f"scenarios must declare at least one bound "
                f"(max_imbalance, max_replication, max_p99_load_factor) — "
                f"there are no default fallbacks"
            )
        return self

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], *, name: str | None = None) -> "ScenarioSpec":
        """Build a spec from a parsed YAML/JSON mapping, failing loudly.

        ``pattern`` and ``seed`` are required; a missing field raises
        :class:`ScenarioError` naming the scenario and, for unknown
        patterns, the valid pattern names (checked in :meth:`validate`).
        """
        extra = dict(payload)
        name = name or extra.pop("name", None)
        if not name:
            raise ScenarioError("scenario spec has no name")
        pattern = extra.pop("pattern", _MISSING)
        if pattern is _MISSING:
            from repro.scenarios.truth import PATTERNS

            raise ScenarioError(
                f"scenario {name!r} has no 'pattern'; the field is required "
                f"— valid patterns: {sorted(PATTERNS)}"
            )
        seed = extra.pop("seed", _MISSING)
        if seed is _MISSING:
            raise ScenarioError(
                f"scenario {name!r} has no 'seed'; the field is required "
                f"for reproducibility — there is no default"
            )
        truth_options = extra.pop("truth", {})
        render = RenderSpec.from_dict(extra.pop("render", {}), scenario=name)
        expected_payload = extra.pop("expected", None)
        expected = (
            ExpectedBounds.from_dict(expected_payload, scenario=name)
            if expected_payload is not None
            else None
        )
        description = extra.pop("description", "")
        unknown = sorted(extra)
        if unknown:
            raise ScenarioError(
                f"scenario {name!r}: unknown spec fields {unknown}; valid "
                f"fields: ['pattern', 'seed', 'truth', 'render', "
                f"'expected', 'description']"
            )
        return cls(
            name=name,
            pattern=pattern,
            seed=seed,
            truth_options=truth_options,
            render=render,
            expected=expected,
            description=description,
        )

    @classmethod
    def from_yaml(cls, text: str, *, name: str | None = None) -> "ScenarioSpec":
        """Parse one YAML scenario document (same schema as :meth:`from_dict`)."""
        import yaml

        payload = yaml.safe_load(text)
        if not isinstance(payload, Mapping):
            raise ScenarioError(
                f"scenario YAML must be a mapping, got {type(payload).__name__}"
            )
        return cls.from_dict(payload, name=name)
