"""Scenario catalog: seeded traffic patterns with expected-assertion bounds.

The package splits a workload scenario into three declarative layers:

- **truth** (:mod:`repro.scenarios.truth`) — the key-popularity process:
  which keys exist and how popular each is over time;
- **render** (:mod:`repro.scenarios.render`) — how that traffic arrives:
  order, burstiness, duplication;
- **spec** (:mod:`repro.scenarios.spec`) — the named declaration binding a
  pattern, a required seed, render options and an ``expected:`` block of
  post-run assertions.

:mod:`repro.scenarios.catalog` holds the named catalog; every entry is
validated at import time and must declare expected bounds.  A
:class:`~repro.scenarios.workload.ScenarioWorkload` renders a spec at a
concrete scale through the standard workload contracts, so scenarios run
unchanged through ``route_stream``, the simulation engine and the dataflow
runtime — scalar, batched or columnar.
"""

from repro.scenarios.catalog import (
    CATALOG,
    assert_result,
    build_workload,
    check_result,
    get_scenario,
    list_scenarios,
)
from repro.scenarios.render import RENDERERS, Renderer, make_renderer
from repro.scenarios.spec import ExpectedBounds, RenderSpec, ScenarioSpec
from repro.scenarios.truth import PATTERNS, Truth, make_truth
from repro.scenarios.workload import ScenarioWorkload

__all__ = [
    "CATALOG",
    "PATTERNS",
    "RENDERERS",
    "ExpectedBounds",
    "RenderSpec",
    "Renderer",
    "ScenarioSpec",
    "ScenarioWorkload",
    "Truth",
    "assert_result",
    "build_workload",
    "check_result",
    "get_scenario",
    "list_scenarios",
    "make_renderer",
    "make_truth",
]
