"""Stateful streaming operators and partial-state aggregation.

The paper's schemes split a key's state across up to ``d`` workers, so a
stateful operator must be able to (a) keep per-key partial state on each
worker and (b) reconcile those partials when the result is needed — the
"aggregation cost proportional to d" discussed in Section IV-B.  This
subpackage provides the operator substrate used by the dataflow runtime and
the examples:

* :mod:`repro.operators.base` — the operator interface and keyed state;
* :mod:`repro.operators.aggregations` — count / sum / average / min-max /
  top-k aggregators, all designed as *commutative monoids* so partial states
  merge exactly;
* :mod:`repro.operators.windows` — tumbling and sliding window assigners and
  a windowed aggregation operator;
* :mod:`repro.operators.reconciliation` — merging partial states collected
  from the replicas of a key, plus an accounting of the aggregation cost.
"""

from repro.operators.aggregations import (
    AverageAggregator,
    CountAggregator,
    MinMaxAggregator,
    SumAggregator,
    TopKAggregator,
)
from repro.operators.base import KeyedState, Operator, StatefulOperator, StatelessOperator
from repro.operators.reconciliation import (
    AggregationCost,
    ReconciliationSink,
    merge_partial_states,
    reconcile,
)
from repro.operators.windows import (
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowedAggregator,
)

__all__ = [
    "AggregationCost",
    "AverageAggregator",
    "CountAggregator",
    "KeyedState",
    "MinMaxAggregator",
    "Operator",
    "ReconciliationSink",
    "SlidingWindowAssigner",
    "StatefulOperator",
    "StatelessOperator",
    "SumAggregator",
    "TopKAggregator",
    "TumblingWindowAssigner",
    "WindowedAggregator",
    "merge_partial_states",
    "reconcile",
]
