"""Operator interface and keyed state.

An operator instance is what the paper calls a *worker*: one parallel copy
of a data transformation.  Stateful operators keep per-key state; when the
upstream edge uses a multi-choice grouping (PKG, D-Choices, W-Choices), a
key's state is split across several instances and must be merged at read
time (see :mod:`repro.operators.reconciliation`).
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.types import Key, Message

#: Shared empty output — what stateful operators emit per message.  Returned
#: (never mutated) by the bulk paths so a batch of n absorbing updates costs
#: one list of n references instead of n empty lists.
_NO_OUTPUT: tuple[Message, ...] = ()


class KeyedState:
    """Per-key state of one operator instance.

    A thin wrapper over a dict that tracks the number of distinct keys (the
    unitary-memory model of Section IV-B counts exactly this) and provides
    the get-or-initialise idiom every stateful operator needs.
    """

    def __init__(self) -> None:
        self._entries: dict[Key, object] = {}

    def get(self, key: Key, initializer: Callable[[], object]) -> object:
        """Return the state for ``key``, creating it with ``initializer``."""
        if key not in self._entries:
            self._entries[key] = initializer()
        return self._entries[key]

    def put(self, key: Key, value: object) -> None:
        self._entries[key] = value

    def peek(self, key: Key) -> object | None:
        """Return the state for ``key`` without creating it."""
        return self._entries.get(key)

    def keys(self) -> Iterator[Key]:
        return iter(self._entries)

    def items(self) -> Iterator[tuple[Key, object]]:
        return iter(self._entries.items())

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        """Number of distinct keys held — the memory unit of the paper."""
        return len(self._entries)


class Operator(abc.ABC):
    """One parallel instance of a data transformation.

    Subclasses implement :meth:`process`, which receives one message and
    yields zero or more output messages (flat-map semantics, like a Storm
    bolt's ``execute``).
    """

    def __init__(self, instance_id: int = 0) -> None:
        if instance_id < 0:
            raise ConfigurationError(
                f"instance_id must be >= 0, got {instance_id}"
            )
        self._instance_id = instance_id
        self._processed = 0

    @property
    def instance_id(self) -> int:
        return self._instance_id

    @property
    def processed(self) -> int:
        """Number of messages this instance has processed."""
        return self._processed

    def execute(self, message: Message) -> list[Message]:
        """Process one message and return the emitted messages."""
        self._processed += 1
        return list(self.process(message))

    def execute_batch(self, messages: Sequence[Message]) -> list[Sequence[Message]]:
        """Process a micro-batch; returns one output sequence per input.

        Semantically identical to ``[self.execute(m) for m in messages]``:
        outputs stay grouped per input message (the dataflow runtime needs
        that mapping to keep batched execution byte-identical to scalar),
        and state/``processed`` evolve exactly as under the scalar calls.
        Bulk performance lives in :meth:`process_batch`, which subclasses
        override with vectorized implementations.
        """
        self._processed += len(messages)
        return self.process_batch(messages)

    @abc.abstractmethod
    def process(self, message: Message) -> Iterable[Message]:
        """Transform one input message into zero or more output messages."""

    def process_batch(self, messages: Sequence[Message]) -> list[Sequence[Message]]:
        """Bulk :meth:`process`: one output sequence per input message.

        The default delegates message-by-message, so every operator is
        batch-capable; operators with a cheaper bulk form (the aggregators,
        windows, reconciliation sinks) override it.  Overrides must leave
        the operator in exactly the state the scalar loop would and return
        outputs in the scalar emission order.
        """
        process = self.process
        return [list(process(message)) for message in messages]

    def state_size(self) -> int:
        """Number of per-key state entries held (0 for stateless operators)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(instance_id={self._instance_id})"


class StatelessOperator(Operator):
    """An operator defined by a pure per-message function.

    Examples
    --------
    >>> splitter = StatelessOperator.from_function(
    ...     lambda message: [
    ...         Message(message.timestamp, word, 1)
    ...         for word in str(message.value).split()
    ...     ]
    ... )
    >>> [m.key for m in splitter.execute(Message(0.0, "line", "a b"))]
    ['a', 'b']
    """

    def __init__(self, function: Callable[[Message], Iterable[Message]],
                 instance_id: int = 0) -> None:
        super().__init__(instance_id)
        self._function = function

    @classmethod
    def from_function(
        cls, function: Callable[[Message], Iterable[Message]]
    ) -> "StatelessOperator":
        return cls(function)

    def process(self, message: Message) -> Iterable[Message]:
        return self._function(message)

    def process_batch(self, messages: Sequence[Message]) -> list[Sequence[Message]]:
        function = self._function
        return [list(function(message)) for message in messages]


class StatefulOperator(Operator):
    """Base class for operators with per-key state.

    The default :meth:`process` applies :meth:`update` to the message's key
    and emits nothing; subclasses (e.g. the aggregators) override
    :meth:`update` and may also override :meth:`process` to emit updates
    downstream.
    """

    def __init__(self, instance_id: int = 0) -> None:
        super().__init__(instance_id)
        self._state = KeyedState()

    @property
    def state(self) -> KeyedState:
        return self._state

    def state_size(self) -> int:
        return len(self._state)

    @abc.abstractmethod
    def update(self, key: Key, value: object) -> None:
        """Fold ``value`` into the state of ``key``."""

    def update_batch(self, items: Sequence[tuple[Key, object]]) -> None:
        """Fold a batch of ``(key, value)`` pairs into the state.

        The default loops :meth:`update`; aggregators override it with bulk
        folds that reduce the batch per key (one state access per distinct
        key instead of one per message).  Overrides must produce exactly
        the state the scalar loop would — bit-for-bit: folds that are only
        associative up to rounding (float addition) seed each key's
        running value from the current state and fold in arrival order
        rather than pre-reducing from zero.
        """
        update = self.update
        for key, value in items:
            update(key, value)

    def execute_batch_ids(self, ids: Sequence[int], dictionary) -> None:
        """Fold a terminal columnar share: interned key-ids, no messages.

        The columnar dataflow runtime calls this on terminal stateful
        vertices so the whole share is pre-reduced in id space — no Message
        objects, no per-message decode.  ``dictionary`` is the stream's
        :class:`~repro.workloads.columnar.KeyDictionary`.  Values are
        ``None`` (key-only ingestion), exactly as when raw keys are wrapped
        into messages.
        """
        self._processed += len(ids)
        self.update_batch_ids(ids, dictionary)

    def update_batch_ids(self, ids: Sequence[int], dictionary) -> None:
        """Fold a batch of interned key-ids into the state (value ``None``).

        The default decodes each id and delegates to :meth:`update`;
        aggregators whose fold is exact under pre-reduction override it to
        reduce per distinct id before touching the state.  Overrides must
        leave the state exactly as the scalar loop over the decoded keys
        would — including dict insertion order.
        """
        update = self.update
        key_of = dictionary.key_of
        for kid in ids:
            update(key_of(kid), None)

    def process(self, message: Message) -> Iterable[Message]:
        self.update(message.key, message.value)
        return ()

    def process_batch(self, messages: Sequence[Message]) -> list[Sequence[Message]]:
        self.update_batch([(message.key, message.value) for message in messages])
        return [_NO_OUTPUT] * len(messages)

    def partial_state(self) -> dict[Key, object]:
        """A snapshot of this instance's per-key partial state."""
        return dict(self._state.items())
