"""Window assigners and windowed aggregation.

Streaming aggregations are usually scoped to time windows.  The assigners
map a message timestamp to one (tumbling) or several (sliding) window start
times; :class:`WindowedAggregator` keeps one accumulator per (window, key)
pair and exposes closed windows for downstream consumption.

Windows interact with the paper's topic in one important way: the *key* of
the windowed state is still the message key, so the same skew that breaks
key grouping for running aggregates breaks it for windowed aggregates — the
examples use this operator on top of D-Choices-grouped edges.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Callable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.operators.base import Operator
from repro.types import Key, Message

_NO_OUTPUT: tuple[Message, ...] = ()


class WindowAssigner(abc.ABC):
    """Maps a timestamp to the start times of the windows it belongs to."""

    @abc.abstractmethod
    def assign(self, timestamp: float) -> tuple[float, ...]:
        """Window start times for ``timestamp``."""

    @property
    @abc.abstractmethod
    def length(self) -> float:
        """Length of each window."""

    def window_end(self, start: float) -> float:
        return start + self.length


class TumblingWindowAssigner(WindowAssigner):
    """Fixed, non-overlapping windows of ``size`` time units.

    Examples
    --------
    >>> assigner = TumblingWindowAssigner(size=10.0)
    >>> assigner.assign(23.0)
    (20.0,)
    """

    def __init__(self, size: float) -> None:
        if size <= 0.0:
            raise ConfigurationError(f"window size must be positive, got {size}")
        self._size = size

    @property
    def length(self) -> float:
        return self._size

    def assign(self, timestamp: float) -> tuple[float, ...]:
        start = (timestamp // self._size) * self._size
        return (start,)


class SlidingWindowAssigner(WindowAssigner):
    """Overlapping windows of ``size`` time units every ``slide`` time units.

    Examples
    --------
    >>> assigner = SlidingWindowAssigner(size=10.0, slide=5.0)
    >>> assigner.assign(12.0)
    (5.0, 10.0)
    """

    def __init__(self, size: float, slide: float) -> None:
        if size <= 0.0:
            raise ConfigurationError(f"window size must be positive, got {size}")
        if slide <= 0.0 or slide > size:
            raise ConfigurationError(
                f"slide must be in (0, size], got {slide} for size {size}"
            )
        self._size = size
        self._slide = slide

    @property
    def length(self) -> float:
        return self._size

    def assign(self, timestamp: float) -> tuple[float, ...]:
        last_start = (timestamp // self._slide) * self._slide
        starts = []
        start = last_start
        while start > timestamp - self._size:
            starts.append(start)
            start -= self._slide
        return tuple(sorted(starts))


class WindowedAggregator(Operator):
    """Per-(window, key) aggregation with watermark-driven window closing.

    Parameters
    ----------
    assigner:
        Tumbling or sliding window assigner.
    fold:
        Binary function folding a message value into the accumulator.
    initializer:
        Zero-argument callable producing the initial accumulator.
    allowed_lateness:
        How far behind the maximum observed timestamp a window end may lag
        before the window is considered closed and emitted.
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        fold: Callable[[object, object], object],
        initializer: Callable[[], object],
        allowed_lateness: float = 0.0,
        instance_id: int = 0,
    ) -> None:
        super().__init__(instance_id)
        if allowed_lateness < 0.0:
            raise ConfigurationError(
                f"allowed_lateness must be >= 0, got {allowed_lateness}"
            )
        self._assigner = assigner
        self._fold = fold
        self._initializer = initializer
        self._allowed_lateness = allowed_lateness
        # (window_start, key) -> accumulator
        self._windows: dict[tuple[float, Key], object] = {}
        self._watermark = float("-inf")

    @property
    def watermark(self) -> float:
        """Largest timestamp observed so far."""
        return self._watermark

    def state_size(self) -> int:
        return len(self._windows)

    def open_windows(self) -> Iterator[tuple[float, Key]]:
        return iter(self._windows)

    def process(self, message: Message) -> Iterator[Message]:
        self._watermark = max(self._watermark, message.timestamp)
        for start in self._assigner.assign(message.timestamp):
            slot = (start, message.key)
            accumulator = self._windows.get(slot)
            if accumulator is None:
                accumulator = self._initializer()
            self._windows[slot] = self._fold(accumulator, message.value)
        yield from self._close_expired()

    def process_batch(self, messages: Sequence[Message]) -> list[Sequence[Message]]:
        """Bulk windowed fold with an earliest-deadline close guard.

        Byte-identical to the scalar loop — window closes stay attached to
        the exact input message whose watermark advance triggered them, so
        downstream routing sees the same sub-streams — but the per-message
        expired scan (O(open windows) in :meth:`process`) only runs when the
        advancing cutoff actually reaches the earliest open window end.  On
        a tumbling window of ``w`` messages that is one scan per window
        instead of one per message.
        """
        assigner = self._assigner
        assign = assigner.assign
        window_end = assigner.window_end
        windows = self._windows
        get = windows.get
        fold = self._fold
        initializer = self._initializer
        lateness = self._allowed_lateness
        watermark = self._watermark
        infinity = float("inf")
        min_end = min(
            (window_end(start) for start, _ in windows), default=infinity
        )
        outputs: list[Sequence[Message]] = []
        append = outputs.append
        for message in messages:
            timestamp = message.timestamp
            if timestamp > watermark:
                watermark = timestamp
            key = message.key
            value = message.value
            for start in assign(timestamp):
                slot = (start, key)
                accumulator = get(slot)
                if accumulator is None:
                    accumulator = initializer()
                    end = window_end(start)
                    if end < min_end:
                        min_end = end
                windows[slot] = fold(accumulator, value)
            if watermark - lateness >= min_end:
                self._watermark = watermark
                append(list(self._close_expired()))
                min_end = min(
                    (window_end(start) for start, _ in windows),
                    default=infinity,
                )
            else:
                append(_NO_OUTPUT)
        self._watermark = watermark
        return outputs

    def _close_expired(self) -> Iterator[Message]:
        cutoff = self._watermark - self._allowed_lateness
        expired = [
            slot
            for slot in self._windows
            if self._assigner.window_end(slot[0]) <= cutoff
        ]
        for start, key in sorted(expired):
            value = self._windows.pop((start, key))
            yield Message(timestamp=self._assigner.window_end(start), key=key,
                          value=(start, value))

    def flush(self) -> list[Message]:
        """Emit every still-open window (end of stream)."""
        emitted = []
        for (start, key), value in sorted(self._windows.items(), key=lambda kv: kv[0]):
            emitted.append(
                Message(timestamp=self._assigner.window_end(start), key=key,
                        value=(start, value))
            )
        self._windows.clear()
        return emitted

    def results_by_window(self) -> dict[float, dict[Key, object]]:
        """Open windows grouped by start time (for inspection/tests)."""
        grouped: dict[float, dict[Key, object]] = defaultdict(dict)
        for (start, key), value in self._windows.items():
            grouped[start][key] = value
        return dict(grouped)
