"""Per-key aggregators designed for split (partial) state.

Each aggregator folds values into a per-key accumulator *and* knows how to
merge two accumulators of the same key.  Merge-ability is what makes the
paper's multi-choice groupings usable for stateful operators: the partial
states of a key that ended up on different workers can be combined into the
exact global answer (count, sum, average, min/max) or an approximate one
with known error (top-k via SpaceSaving).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.operators.base import StatefulOperator
from repro.sketches.space_saving import SpaceSaving
from repro.types import Key


class CountAggregator(StatefulOperator):
    """Counts occurrences per key.

    Examples
    --------
    >>> counter = CountAggregator()
    >>> counter.update("a", None); counter.update("a", None)
    >>> counter.result("a")
    2
    """

    def update(self, key: Key, value: object) -> None:
        current = self.state.get(key, int)
        self.state.put(key, current + 1)

    def update_batch(self, items: Sequence[tuple[Key, object]]) -> None:
        """Bulk count: one Counter pass, then one state access per key.

        Counting is associative and commutative over the integers, so the
        per-key pre-reduction yields exactly the state of the scalar loop.
        """
        counts = Counter(key for key, _ in items)
        state = self.state
        for key, added in counts.items():
            state.put(key, (state.peek(key) or 0) + added)

    def update_batch_ids(self, ids, dictionary) -> None:
        """Bulk count over interned key-ids: one Counter pass in id space,
        then one decode and one state access per *distinct* key.

        ``Counter`` iterates in first-arrival order (dict insertion order),
        so new keys enter the state exactly where the scalar loop would put
        them.
        """
        counts = Counter(ids)
        state = self.state
        key_of = dictionary.key_of
        for kid, added in counts.items():
            key = key_of(kid)
            state.put(key, (state.peek(key) or 0) + added)

    def result(self, key: Key) -> int:
        return int(self.state.peek(key) or 0)

    @staticmethod
    def merge(left: int, right: int) -> int:
        return left + right


class SumAggregator(StatefulOperator):
    """Sums numeric values per key; non-numeric values are rejected."""

    def update(self, key: Key, value: object) -> None:
        if not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"SumAggregator needs numeric values, got {type(value).__name__}"
            )
        current = self.state.get(key, float)
        self.state.put(key, current + float(value))

    def update_batch(self, items: Sequence[tuple[Key, object]]) -> None:
        """Bulk sum: one state read and one write per distinct key.

        Each key's running total is seeded from the current state on first
        occurrence and folded in arrival order, so the additions happen in
        exactly the scalar sequence — bit-identical results even for float
        streams (float addition is commutative but not associative, so a
        pre-reduce-then-merge would drift in the last ulp).
        """
        partials: dict[Key, float] = {}
        get = partials.get
        peek = self.state.peek
        for key, value in items:
            if not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"SumAggregator needs numeric values, got {type(value).__name__}"
                )
            current = get(key)
            if current is None:
                current = peek(key) or 0.0
            partials[key] = current + float(value)
        state = self.state
        for key, total in partials.items():
            state.put(key, total)

    def result(self, key: Key) -> float:
        return float(self.state.peek(key) or 0.0)

    @staticmethod
    def merge(left: float, right: float) -> float:
        return left + right


class AverageAggregator(StatefulOperator):
    """Tracks (sum, count) per key so averages of partial states merge exactly."""

    def update(self, key: Key, value: object) -> None:
        if not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"AverageAggregator needs numeric values, got {type(value).__name__}"
            )
        total, count = self.state.get(key, lambda: (0.0, 0))
        self.state.put(key, (total + float(value), count + 1))

    def update_batch(self, items: Sequence[tuple[Key, object]]) -> None:
        """Bulk (sum, count): one state read and one write per distinct key,
        folding in arrival order from the current state so the float sum is
        bit-identical to the scalar loop (see
        :meth:`SumAggregator.update_batch`)."""
        partials: dict[Key, tuple[float, int]] = {}
        get = partials.get
        peek = self.state.peek
        for key, value in items:
            if not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"AverageAggregator needs numeric values, got {type(value).__name__}"
                )
            entry = get(key)
            if entry is None:
                entry = peek(key) or (0.0, 0)
            total, count = entry
            partials[key] = (total + float(value), count + 1)
        state = self.state
        for key, entry in partials.items():
            state.put(key, entry)

    def result(self, key: Key) -> float:
        entry = self.state.peek(key)
        if not entry:
            return 0.0
        total, count = entry
        return total / count if count else 0.0

    @staticmethod
    def merge(left: tuple[float, int], right: tuple[float, int]) -> tuple[float, int]:
        return (left[0] + right[0], left[1] + right[1])


class MinMaxAggregator(StatefulOperator):
    """Tracks the minimum and maximum value seen per key."""

    def update(self, key: Key, value: object) -> None:
        if not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"MinMaxAggregator needs numeric values, got {type(value).__name__}"
            )
        entry = self.state.peek(key)
        value = float(value)
        if entry is None:
            self.state.put(key, (value, value))
        else:
            low, high = entry
            self.state.put(key, (min(low, value), max(high, value)))

    def update_batch(self, items: Sequence[tuple[Key, object]]) -> None:
        """Bulk min/max: pre-reduce per key — exact (min and max are
        associative and commutative, unlike float addition)."""
        partials: dict[Key, tuple[float, float]] = {}
        get = partials.get
        for key, value in items:
            if not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"MinMaxAggregator needs numeric values, got {type(value).__name__}"
                )
            value = float(value)
            entry = get(key)
            if entry is None:
                partials[key] = (value, value)
            else:
                low, high = entry
                partials[key] = (min(low, value), max(high, value))
        state = self.state
        for key, (low, high) in partials.items():
            entry = state.peek(key)
            if entry is not None:
                low, high = min(low, entry[0]), max(high, entry[1])
            state.put(key, (low, high))

    def result(self, key: Key) -> tuple[float, float] | None:
        entry = self.state.peek(key)
        return tuple(entry) if entry else None

    @staticmethod
    def merge(
        left: tuple[float, float], right: tuple[float, float]
    ) -> tuple[float, float]:
        return (min(left[0], right[0]), max(left[1], right[1]))


class TopKAggregator(StatefulOperator):
    """Approximate per-instance top-k of the *values* routed to it.

    Unlike the other aggregators, the state here is not keyed by the message
    key but held in a single SpaceSaving sketch per instance: the operator
    answers "which items were most frequent in my sub-stream".  Because
    SpaceSaving summaries merge, the per-instance sketches can be combined
    into a global (approximate) top-k — the same machinery the partitioners
    use, reused at the application level.
    """

    _SKETCH_KEY = "__topk__"

    def __init__(self, k: int, capacity: int | None = None, instance_id: int = 0) -> None:
        super().__init__(instance_id)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self._k = k
        self._capacity = capacity if capacity is not None else max(4 * k, 16)

    @property
    def k(self) -> int:
        return self._k

    def update(self, key: Key, value: object) -> None:
        sketch = self.state.get(
            self._SKETCH_KEY, lambda: SpaceSaving(self._capacity)
        )
        sketch.add(key if value is None else value)

    def update_batch(self, items: Sequence[tuple[Key, object]]) -> None:
        """Bulk top-k: one ``add_all`` pass over the sketch (runs of equal
        items collapse into single counter moves, see SpaceSaving)."""
        sketch = self.state.get(
            self._SKETCH_KEY, lambda: SpaceSaving(self._capacity)
        )
        sketch.add_all(
            key if value is None else value for key, value in items
        )

    def result(self, key: Key = None) -> list[tuple[object, int]]:
        """The current top-k items of this instance's sub-stream."""
        sketch = self.state.peek(self._SKETCH_KEY)
        if sketch is None:
            return []
        entries = sorted(sketch.entries(), key=lambda entry: entry.count, reverse=True)
        return [(entry.key, entry.count) for entry in entries[: self._k]]

    @staticmethod
    def merge(left: SpaceSaving, right: SpaceSaving) -> SpaceSaving:
        return left.merge(right)

    def merged_top(self, others: Iterable["TopKAggregator"]) -> list[tuple[object, int]]:
        """Global top-k across this instance and ``others``."""
        sketches = [self.state.peek(self._SKETCH_KEY)]
        for other in others:
            sketches.append(other.state.peek(self._SKETCH_KEY))
        sketches = [sketch for sketch in sketches if sketch is not None]
        if not sketches:
            return []
        merged = sketches[0]
        for sketch in sketches[1:]:
            merged = merged.merge(sketch)
        entries = sorted(merged.entries(), key=lambda entry: entry.count, reverse=True)
        return [(entry.key, entry.count) for entry in entries[: self._k]]
