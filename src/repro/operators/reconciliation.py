"""Reconciliation of partial per-key states across operator instances.

When an edge uses PKG, D-Choices or W-Choices, the state of a key is split
over the instances that processed its messages.  Reading the final value of
the key therefore requires merging those partials — the aggregation step
whose cost the paper bounds by ``d`` entries per head key and two entries
per tail key.

:func:`merge_partial_states` merges the dictionaries produced by
``StatefulOperator.partial_state()``; :func:`reconcile` does the same for a
whole operator group and also reports the measured aggregation cost, so the
examples and benchmarks can verify the memory model of Section IV-B
empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.operators.base import StatefulOperator
from repro.types import Key

#: Sentinel distinguishing "no partial yet" from a stored ``None``.
_MISSING = object()


def merge_partial_states(
    partials: Sequence[Mapping[Key, object]],
    merge: Callable[[object, object], object],
) -> dict[Key, object]:
    """Merge per-instance partial states into one global state.

    ``merge`` must be associative and commutative (all the aggregators in
    :mod:`repro.operators.aggregations` provide such a ``merge``).
    """
    if not partials:
        return {}
    merged: dict[Key, object] = {}
    for partial in partials:
        for key, value in partial.items():
            if key in merged:
                merged[key] = merge(merged[key], value)
            else:
                merged[key] = value
    return merged


@dataclass(frozen=True, slots=True)
class AggregationCost:
    """Measured cost of reconciling a group of operator instances.

    Attributes
    ----------
    total_entries:
        Total number of (instance, key) partial-state entries — the worker-
        side memory of Section IV-B measured on real operator state.
    distinct_keys:
        Number of distinct keys across all instances.
    max_replication:
        Largest number of instances holding state for a single key — bounded
        by 2 for PKG tail keys and by ``d`` (or ``n``) for head keys.
    average_replication:
        ``total_entries / distinct_keys``.
    """

    total_entries: int
    distinct_keys: int
    max_replication: int

    @property
    def average_replication(self) -> float:
        if self.distinct_keys == 0:
            return 0.0
        return self.total_entries / self.distinct_keys


def aggregation_cost(partials: Sequence[Mapping[Key, object]]) -> AggregationCost:
    """Compute the replication statistics of a set of partial states."""
    total_entries = 0
    replication: dict[Key, int] = {}
    for partial in partials:
        total_entries += len(partial)
        for key in partial:
            replication[key] = replication.get(key, 0) + 1
    return AggregationCost(
        total_entries=total_entries,
        distinct_keys=len(replication),
        max_replication=max(replication.values(), default=0),
    )


class ReconciliationSink(StatefulOperator):
    """Streaming second-level aggregation: merges partial states per key.

    This is the *downstream* half of the paper's two-level aggregation: the
    first level (one operator group partitioned with PKG / D-Choices /
    W-Choices) emits per-key partials, and a key-grouped edge delivers every
    partial of a key to exactly one sink instance, which folds them with the
    aggregator's ``merge`` function.  Unlike :func:`reconcile`, which merges
    a whole group's state after the run, the sink reconciles *continuously*
    as partials stream in — the shape the paper's Storm deployment uses.

    Examples
    --------
    >>> from repro.operators.aggregations import CountAggregator
    >>> sink = ReconciliationSink(CountAggregator.merge)
    >>> sink.update("a", 2); sink.update("a", 3)
    >>> sink.state.peek("a")
    5
    """

    def __init__(
        self,
        merge: Callable[[object, object], object],
        instance_id: int = 0,
    ) -> None:
        super().__init__(instance_id)
        self._merge = merge
        #: Number of partials folded per key — the measured aggregation
        #: cost of Section IV-B (bounded by d per head key, 2 per tail key
        #: when the upstream edge uses the paper's schemes).
        self._partials_merged: dict[Key, int] = {}

    @property
    def partials_merged(self) -> dict[Key, int]:
        """How many upstream partials each key's value was merged from."""
        return dict(self._partials_merged)

    def update(self, key: Key, value: object) -> None:
        counts = self._partials_merged
        counts[key] = counts.get(key, 0) + 1
        current = self.state.peek(key)
        if key in self.state:
            value = self._merge(current, value)
        self.state.put(key, value)

    def update_batch(self, items: Sequence[tuple[Key, object]]) -> None:
        """Bulk reconcile: pre-merge the batch per key, one state access each.

        Exact for any associative ``merge`` (the scalar loop computes
        ``(s ⊕ v1) ⊕ v2``, the bulk path ``s ⊕ (v1 ⊕ v2)``) — all the
        aggregator merges qualify.
        """
        merge = self._merge
        partials: dict[Key, object] = {}
        arrived: dict[Key, int] = {}
        get = partials.get
        for key, value in items:
            current = get(key, _MISSING)
            if current is _MISSING:
                partials[key] = value
                arrived[key] = 1
            else:
                partials[key] = merge(current, value)
                arrived[key] += 1
        state = self.state
        counts = self._partials_merged
        for key, value in partials.items():
            counts[key] = counts.get(key, 0) + arrived[key]
            if key in state:
                value = merge(state.peek(key), value)
            state.put(key, value)


def reconcile(
    instances: Iterable[StatefulOperator],
    merge: Callable[[object, object], object],
) -> tuple[dict[Key, object], AggregationCost]:
    """Merge the state of a whole operator group.

    Returns the reconciled global state and the measured aggregation cost.

    Examples
    --------
    >>> from repro.operators.aggregations import CountAggregator
    >>> left, right = CountAggregator(0), CountAggregator(1)
    >>> left.update("a", None); right.update("a", None); right.update("b", None)
    >>> state, cost = reconcile([left, right], CountAggregator.merge)
    >>> state["a"], cost.max_replication
    (2, 2)
    """
    instances = list(instances)
    if not instances:
        raise ConfigurationError("cannot reconcile an empty group of instances")
    partials = [instance.partial_state() for instance in instances]
    merged = merge_partial_states(partials, merge)
    return merged, aggregation_cost(partials)
