"""Hashing substrate.

The grouping schemes of the paper assume "ideal" independent hash functions
``F_1 ... F_d`` mapping keys uniformly at random onto the worker set.  This
subpackage provides:

* :class:`~repro.hashing.hash_family.HashFamily` — an indexed family of
  seeded 64-bit mixing hash functions, the workhorse used by every
  partitioner;
* :class:`~repro.hashing.universal.MultiplyShiftHash` — a classic universal
  hash for integer keys, useful in property tests about collision behaviour;
* :mod:`~repro.hashing.vectorized` — numpy SplitMix64 kernels behind
  :meth:`HashFamily.candidates_batch`, the batched routing fast path;
* :class:`~repro.hashing.consistent.ConsistentHashRing` — a consistent-hash
  ring with virtual nodes, used as a related-work baseline (routing-table-free
  key grouping with smooth worker addition/removal).
"""

from repro.hashing.consistent import ConsistentHashRing
from repro.hashing.hash_family import HashFamily, stable_hash
from repro.hashing.universal import MultiplyShiftHash, TabulationHash
from repro.hashing.vectorized import bucketed_hashes, splitmix64_array

__all__ = [
    "ConsistentHashRing",
    "HashFamily",
    "MultiplyShiftHash",
    "TabulationHash",
    "bucketed_hashes",
    "splitmix64_array",
    "stable_hash",
]
