"""Universal hashing schemes for integer keys.

These are not used on the hot path of the partitioners (which work on
arbitrary keys through :class:`repro.hashing.hash_family.HashFamily`), but
they provide theoretically grounded hash functions for property tests about
collision probabilities, and a tabulation-hashing implementation whose
independence properties are strong enough to back the "ideal hash function"
assumption in the analysis experimentally.
"""

from __future__ import annotations

import random

from repro.exceptions import ConfigurationError

_MASK64 = (1 << 64) - 1


class MultiplyShiftHash:
    """Dietzfelbinger's multiply-shift hash: ``h(x) = (a*x mod 2^64) >> (64-l)``.

    Maps 64-bit integers to ``[0, 2^l)``; 2-universal when ``a`` is a random
    odd 64-bit number.  ``num_buckets`` does not need to be a power of two:
    the hash is computed over the next power of two and reduced modulo
    ``num_buckets`` (adding negligible bias for the bucket counts used here).
    """

    def __init__(self, num_buckets: int, seed: int = 0) -> None:
        if num_buckets < 1:
            raise ConfigurationError(f"num_buckets must be >= 1, got {num_buckets}")
        self._num_buckets = num_buckets
        self._bits = max(1, (num_buckets - 1).bit_length())
        rng = random.Random(seed)
        self._multiplier = rng.getrandbits(64) | 1  # force odd

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    def __call__(self, key: int) -> int:
        if not isinstance(key, int):
            raise ConfigurationError("MultiplyShiftHash only hashes integers")
        word = (key * self._multiplier) & _MASK64
        return (word >> (64 - self._bits)) % self._num_buckets


class TabulationHash:
    """Simple (byte-wise) tabulation hashing over 64-bit integer keys.

    Tabulation hashing is 3-independent and is known to behave like a fully
    random hash for many load-balancing applications (Patrascu & Thorup),
    which makes it a good experimental stand-in for the ideal hash functions
    assumed by the paper.
    """

    _NUM_TABLES = 8  # one per byte of a 64-bit key

    def __init__(self, num_buckets: int, seed: int = 0) -> None:
        if num_buckets < 1:
            raise ConfigurationError(f"num_buckets must be >= 1, got {num_buckets}")
        self._num_buckets = num_buckets
        rng = random.Random(seed)
        self._tables = [
            [rng.getrandbits(64) for _ in range(256)] for _ in range(self._NUM_TABLES)
        ]

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    def __call__(self, key: int) -> int:
        if not isinstance(key, int):
            raise ConfigurationError("TabulationHash only hashes integers")
        value = key & _MASK64
        acc = 0
        for table in self._tables:
            acc ^= table[value & 0xFF]
            value >>= 8
        return acc % self._num_buckets
