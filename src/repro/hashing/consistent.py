"""Consistent hashing ring with virtual nodes.

The related-work section of the paper mentions hybrid schemes built on
consistent hashing (Gedik, VLDBJ 2014).  A consistent-hash ring is included
here both as a baseline grouping substrate (it behaves like key grouping with
smoother redistribution when workers join/leave) and as a building block for
users who want to extend the library with migration-based balancers.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.hashing.hash_family import stable_hash
from repro.types import Key, WorkerId


class ConsistentHashRing:
    """A ring of workers, each represented by ``replicas`` virtual nodes.

    Examples
    --------
    >>> ring = ConsistentHashRing(range(4), replicas=32, seed=7)
    >>> worker = ring.lookup("some-key")
    >>> worker in set(range(4))
    True
    >>> ring.lookup("some-key") == worker
    True
    """

    def __init__(
        self,
        workers: Iterable[WorkerId] = (),
        replicas: int = 64,
        seed: int = 0,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._seed = seed
        self._ring: list[int] = []           # sorted virtual-node positions
        self._owners: dict[int, WorkerId] = {}  # position -> worker
        self._workers: set[WorkerId] = set()
        for worker in workers:
            self.add_worker(worker)

    @property
    def workers(self) -> frozenset[WorkerId]:
        return frozenset(self._workers)

    @property
    def replicas(self) -> int:
        return self._replicas

    def _positions(self, worker: WorkerId) -> list[int]:
        return [
            stable_hash(("vnode", worker, replica), self._seed)
            for replica in range(self._replicas)
        ]

    def add_worker(self, worker: WorkerId) -> None:
        """Add ``worker`` and its virtual nodes to the ring."""
        if worker in self._workers:
            raise ConfigurationError(f"worker {worker!r} already on the ring")
        self._workers.add(worker)
        for position in self._positions(worker):
            # In the (astronomically unlikely) event of a position collision,
            # keep the first owner; lookups remain well defined.
            if position in self._owners:
                continue
            bisect.insort(self._ring, position)
            self._owners[position] = worker

    def remove_worker(self, worker: WorkerId) -> None:
        """Remove ``worker`` and its virtual nodes from the ring."""
        if worker not in self._workers:
            raise ConfigurationError(f"worker {worker!r} not on the ring")
        self._workers.remove(worker)
        for position in self._positions(worker):
            if self._owners.get(position) != worker:
                continue
            index = bisect.bisect_left(self._ring, position)
            del self._ring[index]
            del self._owners[position]

    def lookup(self, key: Key) -> WorkerId:
        """Return the worker owning ``key`` (first virtual node clockwise)."""
        if not self._ring:
            raise ConfigurationError("cannot look up a key on an empty ring")
        position = stable_hash(key, self._seed)
        index = bisect.bisect_right(self._ring, position)
        if index == len(self._ring):
            index = 0
        return self._owners[self._ring[index]]

    def lookup_many(self, key: Key, count: int) -> tuple[WorkerId, ...]:
        """Return up to ``count`` distinct workers walking clockwise from ``key``.

        Useful for replication-style extensions (a key and its backups).
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if not self._ring:
            raise ConfigurationError("cannot look up a key on an empty ring")
        found: list[WorkerId] = []
        position = stable_hash(key, self._seed)
        start = bisect.bisect_right(self._ring, position)
        for offset in range(len(self._ring)):
            owner = self._owners[self._ring[(start + offset) % len(self._ring)]]
            if owner not in found:
                found.append(owner)
            if len(found) == count or len(found) == len(self._workers):
                break
        return tuple(found)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: WorkerId) -> bool:
        return worker in self._workers
