"""Vectorized SplitMix64 hashing over numpy ``uint64`` arrays.

The scalar path in :mod:`repro.hashing.hash_family` mixes one 64-bit word at
a time in pure Python.  That is fine for a single lookup but dominates the
routing hot path when a partitioner needs ``d`` candidates for every message
of a stream.  This module applies the *same* SplitMix64 finalizer to whole
arrays at once, so hashing a batch of ``m`` keys under ``d`` functions is a
handful of numpy kernels over an ``(m, d)`` array instead of ``m * d``
Python-level mixes.

Bit-exactness matters: batched and scalar routing must produce identical
candidate workers (multiple sources agree on a key's candidates purely
through hashing).  ``splitmix64_array`` therefore mirrors
``hash_family._splitmix64`` operation for operation; unsigned 64-bit
overflow wraps in numpy exactly as the ``& _MASK64`` masking does in Python.
The equivalence is pinned by ``tests/hashing/test_vectorized.py``.
"""

from __future__ import annotations

import numpy as np

#: SplitMix64 constants — must match :mod:`repro.hashing.hash_family`.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Apply the SplitMix64 finalizer elementwise to a ``uint64`` array.

    Returns a new array; the input is not modified.  Overflow wraps modulo
    2^64, which is the defined behaviour of the mixing function.
    """
    x = x + _GAMMA
    x = (x ^ (x >> _S30)) * _MIX1
    x = (x ^ (x >> _S27)) * _MIX2
    return x ^ (x >> _S31)


def bucketed_hash_columns(
    key_ints: np.ndarray, mixed_seeds: np.ndarray, num_buckets: int
) -> list[list[int]]:
    """Column-major :func:`bucketed_hashes`: one flat Python list per function.

    ``bucketed_hashes(...).tolist()`` materialises one small list per *row*
    (message), which the routing selection loops immediately unpack and
    discard — for a 2-choice tail pass that is a throwaway allocation per
    message.  Returning the ``d`` columns as flat ``int`` lists instead lets
    consumers walk the batch with ``zip(firsts, seconds)``, whose result
    tuple CPython recycles, so the per-message allocation disappears.  The
    values are identical to the matrix form: ``column[j][i] ==
    bucketed_hashes(...)[i, j]``.
    """
    matrix = bucketed_hashes(key_ints, mixed_seeds, num_buckets)
    return [matrix[:, j].tolist() for j in range(matrix.shape[1])]


def bucketed_hashes(
    key_ints: np.ndarray, mixed_seeds: np.ndarray, num_buckets: int
) -> np.ndarray:
    """Hash every key under every seed and reduce onto ``[0, num_buckets)``.

    Parameters
    ----------
    key_ints:
        ``uint64`` array of serialised keys (one entry per message), i.e. the
        output of ``hash_family._key_to_int`` for each key.
    mixed_seeds:
        ``uint64`` array of *pre-mixed* per-function seeds, i.e.
        ``splitmix64(sub_seed)`` for each function of the family.
    num_buckets:
        Codomain size ``n``.

    Returns
    -------
    ``int64`` array of shape ``(len(key_ints), len(mixed_seeds))`` whose
    ``[i, j]`` entry equals ``stable_hash(key_i, sub_seed_j) % num_buckets``.
    """
    mixed = splitmix64_array(key_ints[:, None] ^ mixed_seeds[None, :])
    return (mixed % np.uint64(num_buckets)).astype(np.int64)
