"""A family of independent, seeded hash functions over arbitrary keys.

Python's built-in :func:`hash` is randomised per process (for strings) and is
not seedable, so it cannot provide the *d* independent functions
``F_1 ... F_d`` required by the Greedy-d process.  Instead we serialise the
key deterministically and run it through a 64-bit mixing function
(SplitMix64-style finalizer) keyed by a per-function seed.  This gives:

* determinism across processes and runs (important for reproducible
  experiments and for multiple sources agreeing on the candidate workers of a
  key, exactly as hash-based routing does in a real DSPE);
* near-uniform output, which is the "ideal hash function" assumption used in
  the paper's analysis (Appendix A).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hashing.vectorized import bucketed_hash_columns, bucketed_hashes
from repro.types import Key, WorkerId

_MASK64 = (1 << 64) - 1

#: Upper bound on the number of keys each :class:`HashFamily` interns.  The
#: cache is FIFO-evicted, so a family never holds more than this many
#: candidate tuples / folded integers regardless of stream cardinality.
DEFAULT_CACHE_SIZE = 1 << 16

#: Key types the interning caches may hold.  Dict lookups use ``==``, which
#: crosses types (``-1 == -1.0 == True`` all collide as dict keys) while
#: ``_key_to_int`` deliberately folds those differently — so only exact
#: types that never compare equal to another hashable type are cached;
#: everything else (bool, float, tuples, custom objects) is folded afresh
#: on every call.  Note ``type(True) is bool``, so bools are excluded here
#: automatically.
_CACHEABLE_TYPES = frozenset({str, bytes, int})

# SplitMix64 constants (Steele et al., "Fast splittable pseudorandom number
# generators").  They provide excellent avalanche behaviour for 64-bit words.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """Finalise a 64-bit word with the SplitMix64 mixing function."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _key_to_int(key: Key) -> int:
    """Serialise an arbitrary hashable key into a 64-bit integer.

    Strings and bytes are folded eight bytes at a time (``int.from_bytes``
    runs the chunk conversion in C) with an FNV-1a style multiply between
    chunks, so similar keys ("word1", "word2") still land far apart after
    mixing.  The length is xored into the accumulator so prefixes of each
    other ("a", "a\\x00") stay distinct.  Integers are used directly.  Any
    other hashable type falls back to ``hash()``; this is process-dependent
    for custom ``__hash__`` implementations, so experiments use string or
    integer keys.
    """
    if isinstance(key, bool):  # bool is an int subclass; keep it distinct
        return int(key) + 0x5BF03635
    if isinstance(key, int):
        return key & _MASK64
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    else:
        return hash(key) & _MASK64
    length = len(data)
    if length <= 8:
        # XOR the offset basis so short strings stay distinct from the raw
        # integers they would otherwise equal ('' vs 0, '\x01' vs 1, ...).
        return int.from_bytes(data, "little") ^ (((length * _GAMMA) ^ _FNV_OFFSET) & _MASK64)
    acc = (_FNV_OFFSET ^ (length * _GAMMA)) & _MASK64
    for start in range(0, length, 8):
        acc = ((acc ^ int.from_bytes(data[start : start + 8], "little"))
               * _FNV_PRIME) & _MASK64
    return acc


def stable_hash(key: Key, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``key`` under ``seed``.

    This is the primitive used everywhere the paper assumes an ideal hash
    function.  Different seeds give (empirically) independent functions.
    """
    return _splitmix64(_key_to_int(key) ^ _splitmix64(seed & _MASK64))


#: A hash family keeps candidate tables for at most this many dictionaries
#: (FIFO-evicted).  Streams use one dictionary, so this is pure headroom.
_MAX_ID_TABLES = 4


class _IdTable:
    """Candidate buckets per key id, for one (family, dictionary) pair.

    ``rows[kid, j]`` is the ``j``-th candidate bucket of the key behind id
    ``kid`` — computed from the dictionary's *folded key*, never from the id
    itself, so gathers from this table are bit-identical to hashing the
    original keys.  The table grows lazily (capacity-doubled) as the
    dictionary interns new keys and is rebuilt wider when a larger ``d`` is
    requested (candidate tuples are prefix-stable, so a wide table serves
    every smaller ``d`` by column slicing).
    """

    __slots__ = ("width", "filled", "rows")

    def __init__(self, width: int) -> None:
        self.width = width
        self.filled = 0
        self.rows = np.empty((0, width), dtype=np.int64)


class HashFamily:
    """An indexed family of ``d`` independent hash functions onto ``[0, n)``.

    Parameters
    ----------
    num_functions:
        Size of the family (the maximum ``d`` any caller will request).
    num_buckets:
        Size of the codomain, i.e. the number of workers ``n``.
    seed:
        Base seed; families created with the same seed are identical, which
        is how multiple sources agree on a key's candidate workers without
        a routing table.

    Examples
    --------
    >>> family = HashFamily(num_functions=2, num_buckets=10, seed=42)
    >>> candidates = family.candidates("apple")
    >>> len(candidates)
    2
    >>> all(0 <= c < 10 for c in candidates)
    True
    >>> family.candidates("apple") == candidates   # deterministic
    True
    """

    def __init__(
        self,
        num_functions: int,
        num_buckets: int,
        seed: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if num_functions < 1:
            raise ConfigurationError(
                f"need at least one hash function, got {num_functions}"
            )
        if num_buckets < 1:
            raise ConfigurationError(
                f"need at least one bucket, got {num_buckets}"
            )
        if cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        self._num_functions = num_functions
        self._num_buckets = num_buckets
        self._seed = seed
        self._cache_size = cache_size
        # Pre-mix one sub-seed per function so that function i is keyed by a
        # well-separated 64-bit constant rather than by the small integer i.
        self._sub_seeds = tuple(
            _splitmix64((seed & _MASK64) + i * _GAMMA) for i in range(num_functions)
        )
        # stable_hash(key, s) == splitmix64(key_int ^ splitmix64(s)); the
        # inner mix only depends on the sub-seed, so do it once here.
        self._mixed_seeds = tuple(_splitmix64(s) for s in self._sub_seeds)
        self._mixed_seeds_np = np.array(self._mixed_seeds, dtype=np.uint64)
        # Interning caches (FIFO-evicted at cache_size entries): string keys
        # are folded to 64 bits once, and a key's candidate tuple is derived
        # once rather than per message.  Candidate tuples are prefix-stable
        # in d, so one cached tuple serves every smaller d via slicing.
        self._int_cache: dict[Key, int] = {}
        self._candidate_cache: dict[Key, tuple[WorkerId, ...]] = {}
        # Per-dictionary candidate tables for the columnar id fast path,
        # keyed by KeyDictionary.token (FIFO-bounded; see _id_table).
        self._id_tables: dict[int, _IdTable] = {}

    @property
    def num_functions(self) -> int:
        return self._num_functions

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    @property
    def seed(self) -> int:
        return self._seed

    def hash(self, key: Key, index: int) -> WorkerId:
        """Apply the ``index``-th function of the family to ``key``."""
        if not 0 <= index < self._num_functions:
            raise ConfigurationError(
                f"hash function index {index} outside [0, {self._num_functions})"
            )
        return stable_hash(key, self._sub_seeds[index]) % self._num_buckets

    def candidates(self, key: Key, d: int | None = None) -> tuple[WorkerId, ...]:
        """Return the first ``d`` candidate buckets for ``key``.

        ``d`` defaults to the full family size.  Duplicates are *not*
        removed: the paper's analysis explicitly accounts for hash collisions
        among the d choices (the ``b_h`` term), so the raw multiset is what
        callers need.

        Results are interned: the first lookup of a key folds and mixes it,
        repeat lookups (the overwhelmingly common case on skewed streams)
        return the cached tuple.
        """
        if d is None:
            d = self._num_functions
        if not 1 <= d <= self._num_functions:
            raise ConfigurationError(
                f"requested d={d} outside [1, {self._num_functions}]"
            )
        if type(key) not in _CACHEABLE_TYPES:
            key_int = _key_to_int(key)
            buckets = self._num_buckets
            return tuple(
                _splitmix64(key_int ^ mixed) % buckets
                for mixed in self._mixed_seeds[:d]
            )
        cache = self._candidate_cache
        cached = cache.get(key)
        if cached is not None:
            length = len(cached)
            if length == d:
                return cached
            if length > d:
                return cached[:d]
        key_int = self._intern_key(key)
        buckets = self._num_buckets
        result = tuple(
            _splitmix64(key_int ^ mixed) % buckets for mixed in self._mixed_seeds[:d]
        )
        if self._cache_size:
            if len(cache) >= self._cache_size:
                cache.pop(next(iter(cache)))
            cache[key] = result
        return result

    def candidates_batch(self, keys: Sequence[Key], d: int | None = None) -> np.ndarray:
        """Candidate buckets for a whole batch of keys at once.

        Returns an ``int64`` array of shape ``(len(keys), d)`` whose row
        ``i`` equals ``candidates(keys[i], d)``.  Key serialisation goes
        through the interning cache (each distinct key is folded once); the
        SplitMix64 mixing and bucket reduction run vectorized over the full
        ``(len(keys), d)`` matrix.
        """
        if d is None:
            d = self._num_functions
        if not 1 <= d <= self._num_functions:
            raise ConfigurationError(
                f"requested d={d} outside [1, {self._num_functions}]"
            )
        key_ints = np.fromiter(
            (self._intern_key(key) for key in keys),
            dtype=np.uint64,
            count=len(keys),
        )
        return bucketed_hashes(key_ints, self._mixed_seeds_np[:d], self._num_buckets)

    def candidates_batch_columns(
        self, keys: Sequence[Key], d: int | None = None
    ) -> list[list[int]]:
        """Column-major :meth:`candidates_batch` for allocation-free walking.

        Returns ``d`` flat ``int`` lists such that ``result[j][i]`` is the
        ``j``-th candidate of ``keys[i]``.  The routing hot loops iterate a
        batch as ``zip(firsts, seconds)`` over these columns, avoiding the
        per-message row list that ``candidates_batch(...).tolist()`` would
        allocate.
        """
        if d is None:
            d = self._num_functions
        if not 1 <= d <= self._num_functions:
            raise ConfigurationError(
                f"requested d={d} outside [1, {self._num_functions}]"
            )
        key_ints = np.fromiter(
            (self._intern_key(key) for key in keys),
            dtype=np.uint64,
            count=len(keys),
        )
        return bucketed_hash_columns(
            key_ints, self._mixed_seeds_np[:d], self._num_buckets
        )

    def _check_d(self, d: int | None) -> int:
        if d is None:
            return self._num_functions
        if not 1 <= d <= self._num_functions:
            raise ConfigurationError(
                f"requested d={d} outside [1, {self._num_functions}]"
            )
        return d

    def _id_table(self, dictionary, d: int) -> np.ndarray:
        """The (grown-to-date) candidate table for ``dictionary``, ≥ ``d`` wide."""
        tables = self._id_tables
        table = tables.get(dictionary.token)
        if table is None or table.width < d:
            if table is None and len(tables) >= _MAX_ID_TABLES:
                tables.pop(next(iter(tables)))
            table = _IdTable(d)
            tables[dictionary.token] = table
        size = len(dictionary)
        if table.filled < size:
            if size > table.rows.shape[0]:
                capacity = max(size, table.rows.shape[0] * 2, 1024)
                grown = np.empty((capacity, table.width), dtype=np.int64)
                grown[: table.filled] = table.rows[: table.filled]
                table.rows = grown
            table.rows[table.filled : size] = bucketed_hashes(
                dictionary.folded[table.filled : size],
                self._mixed_seeds_np[: table.width],
                self._num_buckets,
            )
            table.filled = size
        return table.rows

    def id_candidate_rows(self, ids: np.ndarray, dictionary, d: int | None = None) -> np.ndarray:
        """Row-major candidate buckets for an id array (columnar fast path).

        ``dictionary`` is the :class:`~repro.workloads.columnar.KeyDictionary`
        that issued ``ids``.  Equals ``candidates_batch(decoded_keys, d)``
        bit for bit, but runs as a single table gather: candidates per id
        are precomputed once into a per-dictionary table (see
        :class:`_IdTable`) and never recomputed while the family lives.
        Rescaling recreates the family, which drops the tables — that is the
        invalidation path.
        """
        d = self._check_d(d)
        return self._id_table(dictionary, d)[ids, :d]

    def id_candidate_columns(self, ids: np.ndarray, dictionary, d: int | None = None) -> list[list[int]]:
        """Column-major :meth:`id_candidate_rows` (allocation-free walking)."""
        d = self._check_d(d)
        rows = self._id_table(dictionary, d)
        return [rows[ids, j].tolist() for j in range(d)]

    def candidates_for_id(self, kid: int, dictionary, d: int | None = None) -> tuple[WorkerId, ...]:
        """Scalar :meth:`candidates` addressed by key id."""
        d = self._check_d(d)
        return tuple(self._id_table(dictionary, d)[kid, :d].tolist())

    def _intern_key(self, key: Key) -> int:
        """``_key_to_int`` with FIFO-bounded memoisation."""
        if type(key) not in _CACHEABLE_TYPES:
            return _key_to_int(key)  # cross-type ==; see _CACHEABLE_TYPES
        cache = self._int_cache
        value = cache.get(key)
        if value is None:
            value = _key_to_int(key)
            if self._cache_size:
                if len(cache) >= self._cache_size:
                    cache.pop(next(iter(cache)))
                cache[key] = value
        return value

    def distinct_candidates(self, key: Key, d: int | None = None) -> tuple[WorkerId, ...]:
        """Like :meth:`candidates` but with duplicates removed, order kept."""
        seen: dict[WorkerId, None] = {}
        for candidate in self.candidates(key, d):
            seen.setdefault(candidate, None)
        return tuple(seen)

    def with_buckets(self, num_buckets: int) -> "HashFamily":
        """Return a new family with the same seed but a different codomain."""
        return HashFamily(self._num_functions, num_buckets, self._seed)

    def with_functions(self, num_functions: int) -> "HashFamily":
        """Return a new family with the same seed but a different size."""
        return HashFamily(num_functions, self._num_buckets, self._seed)

    def spread(self, keys: Iterable[Key], d: int = 1) -> list[int]:
        """Histogram of bucket hits for ``keys`` under the first ``d`` functions.

        Convenience used by tests and benchmarks to check uniformity.
        """
        counts = [0] * self._num_buckets
        for key in keys:
            for bucket in self.candidates(key, d):
                counts[bucket] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashFamily(num_functions={self._num_functions}, "
            f"num_buckets={self._num_buckets}, seed={self._seed})"
        )


def collision_probability(n: int, d: int) -> float:
    """Probability that two specific choices out of ``d`` collide in ``[n]``.

    Small helper used by the analysis tests; under ideal hashing each pair of
    choices collides with probability ``1/n``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    if d < 2:
        return 0.0
    return 1.0 / n


def expected_distinct(n: int, d: int) -> float:
    """Expected number of distinct buckets hit by ``d`` uniform throws into ``n``.

    This is the quantity ``b`` of Appendix A: ``n - n((n-1)/n)^d``.
    Kept here (as well as in :mod:`repro.analysis.choices`) because it is a
    property of the hashing substrate and is tested against the empirical
    behaviour of :class:`HashFamily`.
    """
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    if d < 0:
        raise ConfigurationError(f"d must be non-negative, got {d}")
    return n - n * ((n - 1) / n) ** d


def candidate_union(families: Sequence[tuple[HashFamily, Key, int]]) -> set[WorkerId]:
    """Union of candidate sets for several (family, key, d) triples.

    Mirrors the ``U_{i<=h} W_i`` construction from the paper's analysis and is
    used by the empirical validation of the ``b_h`` bound.
    """
    union: set[WorkerId] = set()
    for family, key, d in families:
        union.update(family.candidates(key, d))
    return union
