"""Abstract base class shared by every grouping scheme.

A partitioner lives inside one *source* (upstream operator instance).  It
keeps a local load vector — its own estimate of how much work it has sent to
each downstream worker — and picks a worker for every outgoing message.  This
mirrors the paper's setting exactly: load estimation is local to the sender
(Section IV-B, "Overhead on Sources") and the candidate workers of a key are
derived from shared hash functions rather than routing tables.

Subclasses implement :meth:`_select`, which returns the destination worker
and (optionally) metadata about the decision; :meth:`route` wraps it with the
local-load bookkeeping.

Two routing paths exist:

* the *decision* path (:meth:`route_with_decision` -> :meth:`_select`)
  materialises a :class:`~repro.types.RoutingDecision` per message — used when
  callers need candidates / head flags for tracing;
* the *fast* path (:meth:`route` -> :meth:`_select_worker`, and the batched
  :meth:`route_batch`) returns bare worker ids with no per-message object
  allocation.  Schemes override :meth:`_select_worker` and
  :meth:`route_batch` to keep the hot loop allocation-free; both paths are
  required (and property-tested) to pick identical workers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.types import Key, RoutingDecision, WorkerId


@dataclass(slots=True)
class PartitionerState:
    """Mutable per-source state every scheme maintains.

    Attributes
    ----------
    loads:
        Local load vector: number of messages this source has sent to each
        worker.  This is the only load information available when routing,
        as in the paper.
    messages_routed:
        Total number of messages routed by this source.
    """

    loads: list[int] = field(default_factory=list)
    messages_routed: int = 0

    def record(self, worker: WorkerId) -> None:
        self.loads[worker] += 1
        self.messages_routed += 1


class Partitioner(abc.ABC):
    """Base class for grouping schemes.

    Parameters
    ----------
    num_workers:
        Number of downstream operator instances ``n``.
    seed:
        Seed for any hashing or randomness inside the scheme.  Two
        partitioners with the same seed make identical hash-based candidate
        choices, which is how independent sources agree on where a key may
        go.
    """

    #: Short name used by the registry, tables and plots (e.g. "PKG", "D-C").
    name: str = "base"

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self._num_workers = num_workers
        self._seed = seed
        self._state = PartitionerState(loads=[0] * num_workers)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def local_loads(self) -> list[int]:
        """This source's view of the per-worker load (messages it has sent)."""
        return list(self._state.loads)

    @property
    def messages_routed(self) -> int:
        return self._state.messages_routed

    def route(self, key: Key) -> WorkerId:
        """Route one message with key ``key``; returns the destination worker."""
        worker = self._select_worker(key)
        self._state.record(worker)
        return worker

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        """Route a whole batch of keys; returns one worker id per key.

        Produces the exact same worker sequence (and final load vector) as
        ``[self.route(key) for key in keys]`` — batching is purely a
        performance optimisation, never a semantic change.  Schemes override
        this to hash the batch vectorized and keep the selection loop free of
        per-message allocations.

        ``head_flags``, when given, is a caller-owned list that receives one
        boolean per key telling whether the key was classified as a heavy
        hitter at routing time (always ``False`` for head-oblivious schemes).
        This lets batch consumers keep head/tail accounting without paying
        for per-message :class:`RoutingDecision` objects.
        """
        select = self._select_worker
        record = self._state.record
        out: list[WorkerId] = []
        append = out.append
        if head_flags is None:
            for key in keys:
                worker = select(key)
                record(worker)
                append(worker)
        else:
            flag = head_flags.append
            for key in keys:
                decision = self._select(key)
                record(decision.worker)
                append(decision.worker)
                flag(decision.is_head)
        return out

    def route_batch_columnar(
        self, batch, head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        """Route one :class:`~repro.workloads.columnar.ColumnarBatch`.

        Contract: identical workers, loads and head flags as
        ``route_batch(batch.keys(), head_flags)`` — the columnar
        representation is pure optimisation.  The base implementation decodes
        and delegates, which is always correct; schemes override it to route
        straight off the id array (hashing through the per-id candidate
        tables of :class:`~repro.hashing.hash_family.HashFamily`, which hash
        the dictionary's *folded keys*, so results stay bit-identical).
        """
        return self.route_batch(batch.keys(), head_flags=head_flags)

    def route_with_decision(self, key: Key) -> RoutingDecision:
        """Like :meth:`route` but returns the full :class:`RoutingDecision`."""
        decision = self._select(key)
        self._state.record(decision.worker)
        return decision

    def reset(self) -> None:
        """Forget all per-source state (loads and any sketches)."""
        self._state = PartitionerState(loads=[0] * self._num_workers)

    def rescale(self, new_num_workers: int) -> None:
        """Resize the downstream worker set to ``new_num_workers``.

        Workers are always the contiguous ids ``0 .. n-1``: growing appends
        new ids at the tail, shrinking removes the highest ids (see
        :mod:`repro.elasticity.events` for why).  The local load vector of
        surviving workers is preserved — the sender keeps what it learned —
        and new workers start with zero estimated load.  Scheme-specific
        routing structures are adjusted by :meth:`_rescale_structures`,
        which every scheme holding sizing-dependent state **must** override
        (the base class holds none, so its hook is a no-op): the hash-based
        schemes rebuild their families for the new bucket count, while
        consistent grouping and the head/tail schemes use incremental
        implementations (the ring keeps its arcs, the sketches keep their
        head tables).
        """
        if new_num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {new_num_workers}"
            )
        old_num_workers = self._num_workers
        if new_num_workers == old_num_workers:
            return
        self._num_workers = new_num_workers
        loads = self._state.loads
        if new_num_workers > old_num_workers:
            loads.extend([0] * (new_num_workers - old_num_workers))
        else:
            del loads[new_num_workers:]
        self._rescale_structures(old_num_workers, new_num_workers)

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        """Adjust scheme-internal structures after a worker-count change.

        The base class holds no hashing state, so this is a no-op; schemes
        with hash families rebuild (or incrementally adjust) them here.
        """

    # ------------------------------------------------------------------ #
    # transplantable routing state (adaptive scheme switching)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict[str, Any]:
        """Snapshot of this partitioner's live, transplantable routing state.

        The base payload is what every scheme maintains — the local load
        vector and the message counter; schemes add their own entries via
        :meth:`_export_structures` (the SpaceSaving head table, scheme
        cursors, solver caches, head-candidate caches).  The dict is an
        in-process handoff, not a serialisation format: live objects (a
        columnar dictionary binding) may be carried by reference.

        Exporting never mutates the donor, so a snapshot can be taken
        speculatively and discarded.
        """
        state: dict[str, Any] = {
            "scheme": self.name,
            "num_workers": self._num_workers,
            "seed": self._seed,
            "loads": list(self._state.loads),
            "messages_routed": self._state.messages_routed,
        }
        self._export_structures(state)
        return state

    def adopt_state(self, state: Mapping[str, Any]) -> None:
        """Continue from another partitioner's :meth:`export_state` snapshot.

        The adopter keeps its own construction parameters (seed, theta,
        choice counts — those are the new scheme's identity) and takes over
        the donor's *learned* state: the load vector, the message counter
        and whatever scheme-specific entries it understands via
        :meth:`_adopt_structures`.  Entries the adopting scheme has no use
        for (a cursor it does not keep) are ignored, which is what makes any
        scheme constructible from any other scheme's live state.

        Adopting a snapshot exported from the *same* scheme with the same
        construction parameters is byte-identical to never having exported:
        every future routing decision matches the donor's (property-pinned
        in ``tests/property/test_state_roundtrip.py``).
        """
        loads = list(state["loads"])
        if len(loads) != self._num_workers:
            raise ConfigurationError(
                f"cannot adopt state for {len(loads)} workers into a "
                f"{self._num_workers}-worker partitioner"
            )
        self._state = PartitionerState(
            loads=loads, messages_routed=int(state["messages_routed"])
        )
        self._adopt_structures(state)

    def _export_structures(self, state: dict[str, Any]) -> None:
        """Add scheme-specific entries to an :meth:`export_state` snapshot.

        The base class holds nothing beyond the load vector, so this is a
        no-op hook.
        """

    def _adopt_structures(self, state: Mapping[str, Any]) -> None:
        """Consume the scheme-specific entries this scheme understands.

        Must tolerate missing entries — the donor may have been any scheme —
        by keeping the adopter's own freshly constructed structures.
        """

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        """The workers ``key`` may currently be routed to — *pure*.

        Unlike :meth:`_select`, this must not mutate any state (no sketch
        updates, no load changes): the elasticity accountant calls it before
        and after a rescale event for every observed key to decide which
        keys moved.  An empty tuple means the key has no placement affinity
        (shuffle grouping routes anywhere), so it never counts as moved.
        """
        return ()

    # ------------------------------------------------------------------ #
    # hooks for subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _select(self, key: Key) -> RoutingDecision:
        """Pick the destination worker for ``key`` (no bookkeeping)."""

    def _select_worker(self, key: Key) -> WorkerId:
        """Allocation-free variant of :meth:`_select`.

        The default delegates to :meth:`_select`; performance-sensitive
        schemes override it to skip the :class:`RoutingDecision` entirely.
        Overrides must make exactly the same choice as :meth:`_select`
        (including any internal state mutation happening exactly once).
        """
        return self._select(key).worker

    # ------------------------------------------------------------------ #
    # helpers shared by load-aware schemes
    # ------------------------------------------------------------------ #
    def _least_loaded(self, candidates: tuple[WorkerId, ...]) -> WorkerId:
        """The candidate with the minimum local load (MINLOAD in Algorithm 1).

        Ties are broken by candidate order, which is arbitrary but
        deterministic — the paper allows arbitrary tie-breaking.
        """
        if not candidates:
            raise ConfigurationError("candidate set must not be empty")
        loads = self._state.loads
        best = candidates[0]
        best_load = loads[best]
        for candidate in candidates[1:]:
            load = loads[candidate]
            if load < best_load:
                best = candidate
                best_load = load
        return best

    def _least_loaded_overall(self) -> WorkerId:
        """The globally least-loaded worker according to the local view.

        ``min`` + ``index`` both return the *first* minimum, so tie-breaking
        matches the explicit scan this replaces while running at C speed.
        """
        loads = self._state.loads
        return loads.index(min(loads))

    def _min_load_level(self) -> tuple[int, list[WorkerId]]:
        """The minimum local load and every worker currently at it.

        The worker list is in ascending id order, so consuming it front to
        back reproduces the first-index tie-break of
        :meth:`_least_loaded_overall` placement by placement.  The batched
        head paths use this to seed a running-argmin queue: placing on the
        queue front and lazily discarding entries whose load has moved on is
        equivalent to an O(n) ``min`` scan per message, because loads only
        ever grow — a worker can leave the minimum level but never rejoin it.
        """
        loads = self._state.loads
        level = min(loads)
        return level, [w for w, load in enumerate(loads) if load == level]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(num_workers={self._num_workers}, "
            f"seed={self._seed})"
        )
