"""Factory for grouping schemes, keyed by the names used in the paper.

The simulators, experiments and the CLI all create partitioners through
:func:`create_partitioner` so a scheme can be selected with a plain string
("PKG", "D-C", ...), exactly as the tables and figures label them.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError
from repro.partitioning.base import Partitioner
from repro.partitioning.consistent_grouping import ConsistentGrouping
from repro.partitioning.d_choices import DChoices
from repro.partitioning.fixed_d import FixedDHead
from repro.partitioning.greedy_d import GreedyD
from repro.partitioning.key_grouping import KeyGrouping
from repro.partitioning.partial_key_grouping import PartialKeyGrouping
from repro.partitioning.round_robin_head import RoundRobinHead
from repro.partitioning.shuffle_grouping import ShuffleGrouping
from repro.partitioning.w_choices import WChoices


def _build_adaptive(**kwargs) -> Partitioner:
    # Imported lazily: the adaptive partitioner builds its delegates through
    # this registry, so a module-level import would be circular.
    from repro.adaptive.partitioner import AdaptivePartitioner

    return AdaptivePartitioner(**kwargs)


_BUILDERS: dict[str, Callable[..., Partitioner]] = {
    "KG": KeyGrouping,
    "SG": ShuffleGrouping,
    "PKG": PartialKeyGrouping,
    "D-C": DChoices,
    "W-C": WChoices,
    "RR": RoundRobinHead,
    "GREEDY-D": GreedyD,
    "FIXED-D": FixedDHead,
    "CH": ConsistentGrouping,
    "AD": _build_adaptive,
}

_ALIASES: dict[str, str] = {
    "KEY": "KG",
    "KEY_GROUPING": "KG",
    "SHUFFLE": "SG",
    "SHUFFLE_GROUPING": "SG",
    "PARTIAL_KEY_GROUPING": "PKG",
    "DC": "D-C",
    "D_CHOICES": "D-C",
    "DCHOICES": "D-C",
    "WC": "W-C",
    "W_CHOICES": "W-C",
    "WCHOICES": "W-C",
    "ROUND_ROBIN": "RR",
    "ROUNDROBIN": "RR",
    "GREEDY": "GREEDY-D",
    "GREEDYD": "GREEDY-D",
    "FIXED_D": "FIXED-D",
    "FIXEDD": "FIXED-D",
    "CONSISTENT": "CH",
    "CONSISTENT_HASHING": "CH",
    "ADAPTIVE": "AD",
}


def available_schemes() -> tuple[str, ...]:
    """Canonical names of every registered grouping scheme."""
    return tuple(_BUILDERS)


def canonical_name(name: str) -> str:
    """Resolve aliases ("dchoices", "w_choices", ...) to the canonical name."""
    upper = name.strip().upper()
    if upper in _BUILDERS:
        return upper
    if upper in _ALIASES:
        return _ALIASES[upper]
    raise ConfigurationError(
        f"unknown grouping scheme {name!r}; known schemes: {sorted(_BUILDERS)}"
    )


def create_partitioner(name: str, num_workers: int, **kwargs) -> Partitioner:
    """Instantiate a grouping scheme by name.

    Keyword arguments are forwarded to the scheme's constructor, so callers
    can pass ``seed``, ``theta``, ``epsilon``, ``num_choices`` (for
    GREEDY-D), an injected ``sketch``, etc.

    Examples
    --------
    >>> pkg = create_partitioner("pkg", num_workers=10, seed=1)
    >>> pkg.name
    'PKG'
    """
    scheme = canonical_name(name)
    builder = _BUILDERS[scheme]
    return builder(num_workers=num_workers, **kwargs)


def head_aware_schemes() -> tuple[str, ...]:
    """Names of the schemes that treat heavy hitters specially."""
    return ("D-C", "W-C", "RR")
