"""W-Choices: head keys may go to any worker (least-loaded of all ``n``).

Conceptually equivalent to Greedy-d with ``d >> n ln n``, but as the paper
notes there is no need to hash the head keys at all — the sender simply picks
the least-loaded worker in its local load vector.  Tail keys keep the two
PKG choices.

W-Choices is the strongest scheme in terms of balance (it has full placement
freedom for the hot keys) and the most expensive in memory: a head key's
state may end up replicated on every worker.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.partitioning.head_tail import HeadTailPartitioner
from repro.types import Key, RoutingDecision, WorkerId


class WChoices(HeadTailPartitioner):
    """Head keys to the least-loaded of all workers, tail keys via PKG.

    Examples
    --------
    >>> wc = WChoices(num_workers=4, seed=0, warmup_messages=0)
    >>> workers = {wc.route("hot") for _ in range(400)}
    >>> len(workers) == 4      # the hot key eventually reaches every worker
    True
    """

    name = "W-C"

    def _select_head(self, key: Key) -> RoutingDecision:
        worker = self._least_loaded_overall()
        return RoutingDecision(key=key, worker=worker, is_head=True)

    def _select_head_worker(self, key: Key) -> WorkerId:
        loads = self._state.loads
        return loads.index(min(loads))

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        """W-Choices batch: two passes and a heap instead of O(n) min scans.

        Pass 1 feeds the sketch and classifies every message (exact because,
        unlike D-Choices, the W-C head path never reads the sketch or the
        message counter — only the load vector, which pass 2 maintains in
        stream order).  Tail candidates are then hashed only for the tail
        messages.  Pass 2 selects workers, replacing the per-head-message
        ``min(loads)`` scan with a lazy (load, worker) min-heap: every
        increment pushes the worker's new entry and stale entries (older,
        hence lower, loads) are discarded on pop, so the heap top is always
        the first-index least-loaded worker — the same tie-break as
        ``list.index(min(...))``.
        """
        state = self._state
        loads = state.loads
        sketch = self._sketch
        theta = self._theta
        warmup = self._warmup_messages
        count = len(keys)

        flags: list[bool] = []
        fappend = flags.append
        add_and_estimate = getattr(sketch, "add_and_estimate", None)
        if add_and_estimate is not None:
            total = sketch.total
            for key in keys:
                total += 1
                estimate = add_and_estimate(key)
                fappend(total >= warmup and estimate >= theta * total)
        else:
            add = sketch.add
            estimate_key = sketch.estimate
            for key in keys:
                add(key)
                total = sketch.total
                fappend(total >= warmup and estimate_key(key) >= theta * total)

        tail_keys = [key for key, is_head in zip(keys, flags) if not is_head]
        tail_pairs = (
            self._hashes.candidates_batch(tail_keys, 2).tolist()
            if tail_keys
            else []
        )
        next_pair = iter(tail_pairs).__next__

        heap = [(load, worker) for worker, load in enumerate(loads)]
        heapq.heapify(heap)
        push = heapq.heappush
        pop = heapq.heappop
        out: list[WorkerId] = []
        append = out.append
        for is_head in flags:
            if is_head:
                load, worker = pop(heap)
                while load != loads[worker]:  # stale: worker moved on
                    load, worker = pop(heap)
                new_load = load + 1
            else:
                first, second = next_pair()
                worker = first if loads[first] <= loads[second] else second
                new_load = loads[worker] + 1
            loads[worker] = new_load
            push(heap, (new_load, worker))
            append(worker)

        state.messages_routed += count
        if head_flags is not None:
            head_flags.extend(flags)
        return out
