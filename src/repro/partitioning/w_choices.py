"""W-Choices: head keys may go to any worker (least-loaded of all ``n``).

Conceptually equivalent to Greedy-d with ``d >> n ln n``, but as the paper
notes there is no need to hash the head keys at all — the sender simply picks
the least-loaded worker in its local load vector.  Tail keys keep the two
PKG choices.

W-Choices is the strongest scheme in terms of balance (it has full placement
freedom for the hot keys) and the most expensive in memory: a head key's
state may end up replicated on every worker.

Batching: the head path reads nothing but the load vector, so W-Choices
declares itself chunk-safe and rides the classified pipeline of
:class:`~repro.partitioning.head_tail.HeadTailPartitioner` — one bulk sketch
pass to classify the chunk, then a selection pass whose head placements come
from the running-argmin queue ("all" mode) instead of an O(n) ``min`` scan
per message.
"""

from __future__ import annotations

from repro.partitioning.head_tail import HeadTailPartitioner
from repro.types import Key, RoutingDecision, WorkerId


class WChoices(HeadTailPartitioner):
    """Head keys to the least-loaded of all workers, tail keys via PKG.

    Examples
    --------
    >>> wc = WChoices(num_workers=4, seed=0, warmup_messages=0)
    >>> workers = {wc.route("hot") for _ in range(400)}
    >>> len(workers) == 4      # the hot key eventually reaches every worker
    True
    """

    name = "W-C"

    #: The head path is a pure function of the load vector, which the
    #: classified pipeline maintains in exact stream order.
    _head_path_chunk_safe = True

    def _head_selection(self) -> tuple[str, int]:
        return ("all", 0)

    def _select_head(self, key: Key) -> RoutingDecision:
        worker = self._least_loaded_overall()
        return RoutingDecision(key=key, worker=worker, is_head=True)

    def _select_head_worker(self, key: Key) -> WorkerId:
        loads = self._state.loads
        return loads.index(min(loads))

    def _select_head_worker_id(self, kid: int) -> WorkerId:
        # Placement reads only the load vector — no decode needed.
        loads = self._state.loads
        return loads.index(min(loads))
