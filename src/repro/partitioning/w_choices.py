"""W-Choices: head keys may go to any worker (least-loaded of all ``n``).

Conceptually equivalent to Greedy-d with ``d >> n ln n``, but as the paper
notes there is no need to hash the head keys at all — the sender simply picks
the least-loaded worker in its local load vector.  Tail keys keep the two
PKG choices.

W-Choices is the strongest scheme in terms of balance (it has full placement
freedom for the hot keys) and the most expensive in memory: a head key's
state may end up replicated on every worker.
"""

from __future__ import annotations

from repro.partitioning.head_tail import HeadTailPartitioner
from repro.types import Key, RoutingDecision


class WChoices(HeadTailPartitioner):
    """Head keys to the least-loaded of all workers, tail keys via PKG.

    Examples
    --------
    >>> wc = WChoices(num_workers=4, seed=0, warmup_messages=0)
    >>> workers = {wc.route("hot") for _ in range(400)}
    >>> len(workers) == 4      # the hot key eventually reaches every worker
    True
    """

    name = "W-C"

    def _select_head(self, key: Key) -> RoutingDecision:
        worker = self._least_loaded_overall()
        return RoutingDecision(key=key, worker=worker, is_head=True)
