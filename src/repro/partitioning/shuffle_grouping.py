"""Shuffle grouping (SG): round-robin assignment, ignoring keys.

SG gives ideal load balance but forces every worker to potentially hold
state for every key, so its memory (and aggregation) cost grows with the
number of workers — the other extreme the paper positions itself against.
"""

from __future__ import annotations

from typing import Sequence

from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision, WorkerId


class ShuffleGrouping(Partitioner):
    """Round-robin over the workers, starting at a seed-dependent offset.

    Examples
    --------
    >>> sg = ShuffleGrouping(num_workers=3, seed=0)
    >>> [sg.route("any") for _ in range(4)]
    [0, 1, 2, 0]
    """

    name = "SG"

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        super().__init__(num_workers, seed)
        # Different sources start at different offsets so that the first
        # message of every source does not pile onto worker 0.
        self._next = seed % num_workers

    def _select(self, key: Key) -> RoutingDecision:
        return RoutingDecision(key=key, worker=self._select_worker(key))

    def _select_worker(self, key: Key) -> WorkerId:
        worker = self._next
        self._next = (worker + 1) % self.num_workers
        return worker

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        # Round-robin ignores the keys entirely: the batch is an arithmetic
        # sequence mod n and the load vector update is closed-form.
        count = len(keys)
        n = self._num_workers
        start = self._next
        out = [(start + offset) % n for offset in range(count)]
        self._next = (start + count) % n
        state = self._state
        loads = state.loads
        full_rounds, remainder = divmod(count, n)
        if full_rounds:
            for worker in range(n):
                loads[worker] += full_rounds
        for offset in range(remainder):
            loads[(start + offset) % n] += 1
        state.messages_routed += count
        if head_flags is not None:
            head_flags.extend([False] * count)
        return out

    def route_batch_columnar(self, batch, head_flags=None):
        # route_batch only looks at len(keys); the id array serves as-is.
        return self.route_batch(batch.ids, head_flags=head_flags)

    def reset(self) -> None:
        super().reset()
        self._next = self.seed % self.num_workers

    def _export_structures(self, state: dict) -> None:
        state["round_robin_cursor"] = self._next

    def _adopt_structures(self, state) -> None:
        cursor = state.get("round_robin_cursor")
        if cursor is not None:
            self._next = cursor % self.num_workers

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        # Round-robin has no key affinity; only the cursor must stay in
        # range.  key_candidates stays the base "no affinity" empty tuple,
        # so shuffle-grouped keys never count as moved.
        self._next %= new_num_workers
