"""Shuffle grouping (SG): round-robin assignment, ignoring keys.

SG gives ideal load balance but forces every worker to potentially hold
state for every key, so its memory (and aggregation) cost grows with the
number of workers — the other extreme the paper positions itself against.
"""

from __future__ import annotations

from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision


class ShuffleGrouping(Partitioner):
    """Round-robin over the workers, starting at a seed-dependent offset.

    Examples
    --------
    >>> sg = ShuffleGrouping(num_workers=3, seed=0)
    >>> [sg.route("any") for _ in range(4)]
    [0, 1, 2, 0]
    """

    name = "SG"

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        super().__init__(num_workers, seed)
        # Different sources start at different offsets so that the first
        # message of every source does not pile onto worker 0.
        self._next = seed % num_workers

    def _select(self, key: Key) -> RoutingDecision:
        worker = self._next
        self._next = (self._next + 1) % self.num_workers
        return RoutingDecision(key=key, worker=worker)

    def reset(self) -> None:
        super().reset()
        self._next = self.seed % self.num_workers
