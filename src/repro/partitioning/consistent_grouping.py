"""Consistent-hashing grouping (related-work baseline).

Related work on stateful stream partitioning (e.g. Gedik, VLDBJ 2014) builds
on consistent hashing: each key is owned by the worker whose virtual node
follows the key's position on a hash ring.  Compared with plain key grouping
the assignment is identical in the static case (single owner per key, so the
same skew problems), but workers can be added or removed with minimal key
movement — the property those migration-based systems rely on.

The scheme is included as a baseline and as a building block for users who
want to experiment with rebalancing extensions; it is *not* part of the
paper's evaluation line-up.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.hashing.consistent import ConsistentHashRing
from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision, WorkerId


class ConsistentGrouping(Partitioner):
    """Single-owner grouping backed by a consistent-hash ring.

    Examples
    --------
    >>> scheme = ConsistentGrouping(num_workers=8, seed=3)
    >>> scheme.route("user-1") == scheme.route("user-1")
    True
    """

    name = "CH"

    #: Cap on the per-id owner cache of the columnar path (FIFO-evicted).
    _ID_OWNER_CACHE_LIMIT = 1 << 16

    def __init__(self, num_workers: int, seed: int = 0, replicas: int = 64) -> None:
        super().__init__(num_workers, seed)
        self._ring = ConsistentHashRing(range(num_workers), replicas=replicas, seed=seed)
        # Columnar fast path: ring lookups memoised per key id.  The cache
        # is only valid for one (dictionary, ring-layout) pair; _ring_epoch
        # advances on every ring mutation to invalidate it.
        self._ring_epoch = 0
        self._id_owner_cache: dict[int, WorkerId] = {}
        self._id_owner_tag: tuple[int, int] | None = None

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    def _select(self, key: Key) -> RoutingDecision:
        worker = self._ring.lookup(key)
        return RoutingDecision(key=key, worker=worker, candidates=(worker,))

    def route_batch_columnar(self, batch, head_flags=None):
        dictionary = batch.dictionary
        tag = (dictionary.token, self._ring_epoch)
        cache = self._id_owner_cache
        if self._id_owner_tag != tag:
            cache.clear()
            self._id_owner_tag = tag
        lookup = self._ring.lookup
        key_of = dictionary.key_of
        limit = self._ID_OWNER_CACHE_LIMIT
        state = self._state
        loads = state.loads
        out: list[WorkerId] = []
        append = out.append
        for kid in batch.ids.tolist():
            worker = cache.get(kid)
            if worker is None:
                worker = lookup(key_of(kid))
                if len(cache) >= limit:
                    cache.pop(next(iter(cache)))
                cache[kid] = worker
            loads[worker] += 1
            append(worker)
        state.messages_routed += len(out)
        if head_flags is not None:
            head_flags.extend([False] * len(out))
        return out

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        # The whole point of the ring: joining workers only steal the arcs
        # of their own virtual nodes, leaving workers only release theirs —
        # every other key keeps its owner.
        self._ring_epoch += 1
        if new_num_workers > old_num_workers:
            for worker in range(old_num_workers, new_num_workers):
                if worker not in self._ring:
                    self._ring.add_worker(worker)
        else:
            for worker in range(new_num_workers, old_num_workers):
                if worker in self._ring:
                    self._ring.remove_worker(worker)

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        return (self._ring.lookup(key),)

    def _export_structures(self, state: dict) -> None:
        # Arc positions are a pure function of (worker, replica, seed), so
        # ring *membership* is the whole mutable state: an adopter with the
        # same seed rebuilds identical arcs for the same member set.
        state["ring_workers"] = [
            worker for worker in range(self.num_workers) if worker in self._ring
        ]

    def _adopt_structures(self, state) -> None:
        members = state.get("ring_workers")
        if members is None:
            return
        target = set(members)
        changed = False
        for worker in range(self.num_workers):
            if worker in target and worker not in self._ring:
                self._ring.add_worker(worker)
                changed = True
            elif worker not in target and worker in self._ring:
                self._ring.remove_worker(worker)
                changed = True
        if changed:
            self._ring_epoch += 1

    # ------------------------------------------------------------------ #
    # elasticity hooks (not used by the paper's experiments, but the whole
    # point of consistent hashing)
    # ------------------------------------------------------------------ #
    def remove_worker(self, worker: WorkerId) -> None:
        """Take a worker out of rotation; its keys move to ring successors."""
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(
                f"worker {worker} outside [0, {self.num_workers})"
            )
        self._ring_epoch += 1
        self._ring.remove_worker(worker)

    def restore_worker(self, worker: WorkerId) -> None:
        """Put a previously removed worker back on the ring."""
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(
                f"worker {worker} outside [0, {self.num_workers})"
            )
        self._ring_epoch += 1
        self._ring.add_worker(worker)
