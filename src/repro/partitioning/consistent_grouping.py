"""Consistent-hashing grouping (related-work baseline).

Related work on stateful stream partitioning (e.g. Gedik, VLDBJ 2014) builds
on consistent hashing: each key is owned by the worker whose virtual node
follows the key's position on a hash ring.  Compared with plain key grouping
the assignment is identical in the static case (single owner per key, so the
same skew problems), but workers can be added or removed with minimal key
movement — the property those migration-based systems rely on.

The scheme is included as a baseline and as a building block for users who
want to experiment with rebalancing extensions; it is *not* part of the
paper's evaluation line-up.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.hashing.consistent import ConsistentHashRing
from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision, WorkerId


class ConsistentGrouping(Partitioner):
    """Single-owner grouping backed by a consistent-hash ring.

    Examples
    --------
    >>> scheme = ConsistentGrouping(num_workers=8, seed=3)
    >>> scheme.route("user-1") == scheme.route("user-1")
    True
    """

    name = "CH"

    def __init__(self, num_workers: int, seed: int = 0, replicas: int = 64) -> None:
        super().__init__(num_workers, seed)
        self._ring = ConsistentHashRing(range(num_workers), replicas=replicas, seed=seed)

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    def _select(self, key: Key) -> RoutingDecision:
        worker = self._ring.lookup(key)
        return RoutingDecision(key=key, worker=worker, candidates=(worker,))

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        # The whole point of the ring: joining workers only steal the arcs
        # of their own virtual nodes, leaving workers only release theirs —
        # every other key keeps its owner.
        if new_num_workers > old_num_workers:
            for worker in range(old_num_workers, new_num_workers):
                if worker not in self._ring:
                    self._ring.add_worker(worker)
        else:
            for worker in range(new_num_workers, old_num_workers):
                if worker in self._ring:
                    self._ring.remove_worker(worker)

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        return (self._ring.lookup(key),)

    # ------------------------------------------------------------------ #
    # elasticity hooks (not used by the paper's experiments, but the whole
    # point of consistent hashing)
    # ------------------------------------------------------------------ #
    def remove_worker(self, worker: WorkerId) -> None:
        """Take a worker out of rotation; its keys move to ring successors."""
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(
                f"worker {worker} outside [0, {self.num_workers})"
            )
        self._ring.remove_worker(worker)

    def restore_worker(self, worker: WorkerId) -> None:
        """Put a previously removed worker back on the ring."""
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(
                f"worker {worker} outside [0, {self.num_workers})"
            )
        self._ring.add_worker(worker)
