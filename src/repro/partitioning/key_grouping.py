"""Key grouping (KG): hash each key to exactly one worker.

This is Storm's "fields grouping" and the MapReduce-style default for
stateful operators.  All state for a key lives on a single worker, so there
is no aggregation cost, but skewed keys directly translate into load
imbalance — the baseline the paper improves upon.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.hash_family import HashFamily
from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision, WorkerId


class KeyGrouping(Partitioner):
    """Single-choice hashing: ``P(k) = F_1(k)``.

    Examples
    --------
    >>> kg = KeyGrouping(num_workers=4, seed=1)
    >>> kg.route("user-42") == kg.route("user-42")   # sticky per key
    True
    """

    name = "KG"

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        super().__init__(num_workers, seed)
        self._hashes = HashFamily(num_functions=1, num_buckets=num_workers, seed=seed)

    def _select(self, key: Key) -> RoutingDecision:
        worker = self._hashes.hash(key, 0)
        return RoutingDecision(key=key, worker=worker, candidates=(worker,))

    def _select_worker(self, key: Key) -> WorkerId:
        return self._hashes.candidates(key, 1)[0]

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        # Single-choice modulo hashing has no incremental form: the hash
        # family is rebuilt and (almost) every key changes owner.
        self._hashes = HashFamily(
            num_functions=1, num_buckets=new_num_workers, seed=self.seed
        )

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        return self._hashes.candidates(key, 1)

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        # KG is stateless per message, so the whole batch vectorizes: one
        # hashing pass, one bincount to update the load vector.
        workers = self._hashes.candidates_batch(keys, 1)[:, 0]
        return self._record_worker_array(workers, head_flags)

    def route_batch_columnar(self, batch, head_flags=None):
        # The columnar path replaces the hashing pass with a table gather.
        workers = self._hashes.id_candidate_rows(batch.ids, batch.dictionary, 1)[:, 0]
        return self._record_worker_array(workers, head_flags)

    def _record_worker_array(
        self, workers: np.ndarray, head_flags: list[bool] | None
    ) -> list[WorkerId]:
        state = self._state
        counts = np.bincount(workers, minlength=self._num_workers).tolist()
        loads = state.loads
        for worker, count in enumerate(counts):
            if count:
                loads[worker] += count
        count = int(workers.size)
        state.messages_routed += count
        if head_flags is not None:
            head_flags.extend([False] * count)
        return workers.tolist()
