"""Key grouping (KG): hash each key to exactly one worker.

This is Storm's "fields grouping" and the MapReduce-style default for
stateful operators.  All state for a key lives on a single worker, so there
is no aggregation cost, but skewed keys directly translate into load
imbalance — the baseline the paper improves upon.
"""

from __future__ import annotations

from repro.hashing.hash_family import HashFamily
from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision


class KeyGrouping(Partitioner):
    """Single-choice hashing: ``P(k) = F_1(k)``.

    Examples
    --------
    >>> kg = KeyGrouping(num_workers=4, seed=1)
    >>> kg.route("user-42") == kg.route("user-42")   # sticky per key
    True
    """

    name = "KG"

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        super().__init__(num_workers, seed)
        self._hashes = HashFamily(num_functions=1, num_buckets=num_workers, seed=seed)

    def _select(self, key: Key) -> RoutingDecision:
        worker = self._hashes.hash(key, 0)
        return RoutingDecision(key=key, worker=worker, candidates=(worker,))
