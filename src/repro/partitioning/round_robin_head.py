"""Round-Robin head placement (the load-oblivious baseline of Section III-B).

Head keys are spread over all ``n`` workers in round-robin order, ignoring
the current load; tail keys use the two PKG choices.  The memory cost is the
same as W-Choices, which is exactly why the paper uses it as the comparison
point for Q1: any gap between RR and W-C is attributable to load-awareness,
not to replication.
"""

from __future__ import annotations

from repro.partitioning.head_tail import HeadTailPartitioner
from repro.types import Key, RoutingDecision, WorkerId


class RoundRobinHead(HeadTailPartitioner):
    """Round-robin for heavy hitters, PKG for the tail.

    Examples
    --------
    >>> rr = RoundRobinHead(num_workers=3, seed=0, warmup_messages=0)
    >>> [rr.route("hot") for _ in range(6)][-3:]
    [0, 1, 2]
    """

    name = "RR"

    #: The head path reads only the round-robin cursor, which the "call"
    #: selection mode advances in exact stream order — so the chunk may be
    #: classified in one bulk sketch pass.
    _head_path_chunk_safe = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._next_worker = 0

    def _select_head(self, key: Key) -> RoutingDecision:
        return RoutingDecision(
            key=key, worker=self._select_head_worker(key), is_head=True
        )

    def _select_head_worker(self, key: Key) -> WorkerId:
        worker = self._next_worker
        self._next_worker = (worker + 1) % self.num_workers
        return worker

    def _select_head_worker_id(self, kid: int) -> WorkerId:
        # The cursor ignores the key entirely — no decode needed.
        return self._select_head_worker(kid)

    def reset(self) -> None:
        super().reset()
        self._next_worker = 0

    def _export_structures(self, state: dict) -> None:
        super()._export_structures(state)
        state["head_cursor"] = self._next_worker

    def _adopt_structures(self, state) -> None:
        super()._adopt_structures(state)
        cursor = state.get("head_cursor")
        if cursor is not None:
            self._next_worker = cursor % self.num_workers

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        super()._rescale_structures(old_num_workers, new_num_workers)
        # Head keys have full placement freedom (the base head candidate
        # set); only the round-robin cursor must stay in range.
        self._next_worker %= new_num_workers
