"""Stream partitioning (grouping) schemes.

This subpackage contains the paper's contribution — :class:`DChoices` and
:class:`WChoices` — plus every scheme they are compared against:

* :class:`KeyGrouping` — hash each key to exactly one worker (Storm's fields
  grouping);
* :class:`ShuffleGrouping` — round-robin, ignoring keys (ideal balance,
  maximal state replication);
* :class:`PartialKeyGrouping` — the power of both choices (ICDE 2015
  baseline);
* :class:`GreedyD` — the Greedy-d process with a fixed ``d`` for every key
  (building block and ablation target);
* :class:`RoundRobinHead` — head keys round-robin over all workers, tail via
  PKG (the load-oblivious baseline of Section III-B);
* :class:`DChoices` / :class:`WChoices` — head/tail split with heavy-hitter
  detection, the paper's algorithms.

All schemes implement :class:`~repro.partitioning.base.Partitioner`; a new
instance must be created per *source* (they keep per-source local state, as
in the paper's setting).  :func:`create_partitioner` builds instances by
name, which is how the simulators and experiments select schemes.
"""

from repro.partitioning.base import Partitioner, PartitionerState
from repro.partitioning.consistent_grouping import ConsistentGrouping
from repro.partitioning.d_choices import DChoices
from repro.partitioning.fixed_d import FixedDHead
from repro.partitioning.greedy_d import GreedyD
from repro.partitioning.key_grouping import KeyGrouping
from repro.partitioning.partial_key_grouping import PartialKeyGrouping
from repro.partitioning.registry import available_schemes, create_partitioner
from repro.partitioning.round_robin_head import RoundRobinHead
from repro.partitioning.shuffle_grouping import ShuffleGrouping
from repro.partitioning.w_choices import WChoices

__all__ = [
    "ConsistentGrouping",
    "DChoices",
    "FixedDHead",
    "GreedyD",
    "KeyGrouping",
    "PartialKeyGrouping",
    "Partitioner",
    "PartitionerState",
    "RoundRobinHead",
    "ShuffleGrouping",
    "WChoices",
    "available_schemes",
    "create_partitioner",
]
