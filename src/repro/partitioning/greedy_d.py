"""The Greedy-d process: least-loaded among ``d`` hash-derived candidates.

Section III-B defines Greedy-d as the common primitive behind PKG (d = 2),
D-Choices (d >= 2 for the head) and, in the limit, W-Choices.  The standalone
:class:`GreedyD` partitioner applies a *fixed* ``d`` to every key; it is used

* as a building block by the head/tail schemes,
* by the Figure 9 experiment that searches for the empirically minimal ``d``,
* and as an ablation baseline ("what if we simply gave every key d choices?").
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.hashing.hash_family import HashFamily
from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision, WorkerId


class GreedyD(Partitioner):
    """Least-loaded of ``d`` candidates, for every key.

    Examples
    --------
    >>> greedy = GreedyD(num_workers=10, num_choices=4, seed=0)
    >>> workers = {greedy.route("k") for _ in range(100)}
    >>> len(workers) <= 4
    True
    """

    name = "GREEDY-D"

    def __init__(self, num_workers: int, num_choices: int, seed: int = 0) -> None:
        super().__init__(num_workers, seed)
        if num_choices < 1:
            raise ConfigurationError(
                f"num_choices must be >= 1, got {num_choices}"
            )
        # Remember what the caller asked for so a later grow can lift the
        # cap again (rescale re-derives the effective d from it).
        self._requested_choices = num_choices
        if num_choices > num_workers:
            # More choices than workers is pointless: cap at n, which makes
            # the scheme behave (almost) like least-loaded-of-all.
            num_choices = num_workers
        self._num_choices = num_choices
        self._hashes = HashFamily(
            num_functions=num_choices, num_buckets=num_workers, seed=seed
        )

    @property
    def num_choices(self) -> int:
        return self._num_choices

    def _select(self, key: Key) -> RoutingDecision:
        candidates = self._hashes.candidates(key, self._num_choices)
        worker = self._least_loaded(candidates)
        return RoutingDecision(key=key, worker=worker, candidates=candidates)

    def _select_worker(self, key: Key) -> WorkerId:
        return self._least_loaded(self._hashes.candidates(key, self._num_choices))

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        self._num_choices = min(self._requested_choices, new_num_workers)
        self._hashes = HashFamily(
            num_functions=self._num_choices,
            num_buckets=new_num_workers,
            seed=self.seed,
        )

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        return self._hashes.candidates(key, self._num_choices)

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        rows = self._hashes.candidates_batch(keys, self._num_choices).tolist()
        return self._route_candidate_rows(rows, head_flags)

    def route_batch_columnar(self, batch, head_flags=None):
        rows = self._hashes.id_candidate_rows(
            batch.ids, batch.dictionary, self._num_choices
        ).tolist()
        return self._route_candidate_rows(rows, head_flags)

    def _route_candidate_rows(
        self, rows: list[list[int]], head_flags: list[bool] | None
    ) -> list[WorkerId]:
        state = self._state
        loads = state.loads
        out: list[WorkerId] = []
        append = out.append
        for row in rows:
            # Scan via an iterator rather than row[1:]: the slice would
            # allocate a fresh list per message just to drop the head.
            scan = iter(row)
            best = next(scan)
            best_load = loads[best]
            for candidate in scan:
                load = loads[candidate]
                if load < best_load:
                    best = candidate
                    best_load = load
            loads[best] += 1
            append(best)
        state.messages_routed += len(out)
        if head_flags is not None:
            head_flags.extend([False] * len(out))
        return out
