"""Partial Key Grouping (PKG) — the power of both choices (ICDE 2015).

Every key has exactly two candidate workers, ``F_1(k)`` and ``F_2(k)``;
each message goes to whichever of the two the *sender* believes is less
loaded.  State for a key is split across at most two workers, so stateful
operators need a two-way aggregation but no routing table.

PKG is the state of the art the paper extends: it balances well as long as
``p1 <= 2/n``, and Figure 1 / Figure 10 / Figure 11 show where it stops
working.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.hash_family import HashFamily
from repro.partitioning._kernels import two_choice_scan
from repro.partitioning.base import Partitioner
from repro.types import Key, RoutingDecision, WorkerId


class PartialKeyGrouping(Partitioner):
    """Two-choice, load-aware hashing.

    Examples
    --------
    >>> pkg = PartialKeyGrouping(num_workers=4, seed=3)
    >>> decisions = {pkg.route("hot-key") for _ in range(100)}
    >>> len(decisions) <= 2    # a key never leaves its two candidates
    True
    """

    name = "PKG"

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        super().__init__(num_workers, seed)
        self._hashes = HashFamily(num_functions=2, num_buckets=num_workers, seed=seed)

    def _select(self, key: Key) -> RoutingDecision:
        candidates = self._hashes.candidates(key, 2)
        worker = self._least_loaded(candidates)
        return RoutingDecision(key=key, worker=worker, candidates=candidates)

    def _select_worker(self, key: Key) -> WorkerId:
        first, second = self._hashes.candidates(key, 2)
        loads = self._state.loads
        return first if loads[first] <= loads[second] else second

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        # Both hash functions are modulo the worker count, so a rescale
        # redraws the candidate pair of (almost) every key.
        self._hashes = HashFamily(
            num_functions=2, num_buckets=new_num_workers, seed=self.seed
        )

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        return self._hashes.candidates(key, 2)

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        # Column-major candidates: two flat int lists instead of one small
        # list per message, walked with zip (whose result tuple CPython
        # recycles) — the selection loop allocates nothing per message.
        firsts, seconds = self._hashes.candidates_batch_columns(keys, 2)
        return self._two_choice_select(firsts, seconds, head_flags)

    def route_batch_columnar(self, batch, head_flags=None):
        # Candidates come from the per-id table (one gather per column, no
        # re-hashing); when the optional numba kernel is enabled the whole
        # selection scan runs compiled.
        if two_choice_scan is not None and len(batch):
            rows = self._hashes.id_candidate_rows(batch.ids, batch.dictionary, 2)
            state = self._state
            load_array = np.asarray(state.loads, dtype=np.int64)
            workers = two_choice_scan(
                np.ascontiguousarray(rows[:, 0]),
                np.ascontiguousarray(rows[:, 1]),
                load_array,
            )
            state.loads[:] = load_array.tolist()
            state.messages_routed += len(batch)
            if head_flags is not None:
                head_flags.extend([False] * len(batch))
            return workers.tolist()
        firsts, seconds = self._hashes.id_candidate_columns(
            batch.ids, batch.dictionary, 2
        )
        return self._two_choice_select(firsts, seconds, head_flags)

    def _two_choice_select(
        self,
        firsts: list[int],
        seconds: list[int],
        head_flags: list[bool] | None,
    ) -> list[WorkerId]:
        state = self._state
        loads = state.loads
        out: list[WorkerId] = []
        append = out.append
        for first, second in zip(firsts, seconds):
            worker = first if loads[first] <= loads[second] else second
            loads[worker] += 1
            append(worker)
        state.messages_routed += len(out)
        if head_flags is not None:
            head_flags.extend([False] * len(out))
        return out
