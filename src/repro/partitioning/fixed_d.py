"""Head/tail partitioner with a *fixed* number of choices for the head.

This is the scheme the Figure 9 experiment sweeps: instead of letting the
constraint solver pick ``d`` (as D-Choices does), the head keys always get
exactly ``num_choices`` hash-derived candidates, while the tail keeps the two
PKG choices.  Sweeping ``num_choices`` from 2 to ``n`` and comparing the
resulting imbalance with W-Choices yields the empirical minimum ``d`` that
the analytical solver is validated against.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.partitioning.head_tail import HeadTailPartitioner
from repro.sketches.base import FrequencyEstimator
from repro.types import Key, RoutingDecision, WorkerId


class FixedDHead(HeadTailPartitioner):
    """Greedy-d on the head with a caller-chosen ``d``; PKG on the tail.

    Examples
    --------
    >>> scheme = FixedDHead(num_workers=10, num_choices=3, warmup_messages=0)
    >>> workers = {scheme.route("hot") for _ in range(200)}
    >>> len(workers) <= 3
    True
    """

    name = "FIXED-D"

    #: The head path reads only the load vector and hash-derived candidate
    #: tuples for a d that never changes mid-stream: chunk-safe, "d" mode.
    _head_path_chunk_safe = True

    def __init__(
        self,
        num_workers: int,
        num_choices: int,
        theta: float | None = None,
        seed: int = 0,
        sketch: FrequencyEstimator | None = None,
        warmup_messages: int = 100,
    ) -> None:
        super().__init__(
            num_workers,
            theta=theta,
            seed=seed,
            sketch=sketch,
            warmup_messages=warmup_messages,
        )
        if num_choices < 2:
            raise ConfigurationError(
                f"num_choices must be >= 2, got {num_choices}"
            )
        self._requested_choices = num_choices
        self._num_choices = min(num_choices, num_workers)

    @property
    def num_choices(self) -> int:
        return self._num_choices

    def _head_selection(self) -> tuple[str, int]:
        return ("d", self._num_choices)

    def _select_head(self, key: Key) -> RoutingDecision:
        candidates = self._head_candidates(key, self._num_choices)
        worker = self._least_loaded(candidates)
        return RoutingDecision(
            key=key, worker=worker, candidates=candidates, is_head=True
        )

    def _select_head_worker(self, key: Key) -> WorkerId:
        candidates = self._cached_head_candidates(key, self._num_choices)
        return self._least_loaded(candidates)

    def _select_head_worker_id(self, kid: int) -> WorkerId:
        candidates = self._cached_head_candidates_id(kid, self._num_choices)
        return self._least_loaded(candidates)

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        super()._rescale_structures(old_num_workers, new_num_workers)
        self._num_choices = min(self._requested_choices, new_num_workers)

    def _head_key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        return self._head_candidates(key, self._num_choices)
