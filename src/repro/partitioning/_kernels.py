"""Optional compiled kernels for the routing hot loops.

The two-choice tail scan (PKG and the head/tail schemes' tail path) is a
data-dependent loop — each selection updates the load vector the next one
reads — so it cannot vectorize in numpy.  When `numba` is installed **and**
the environment opts in with ``REPRO_NUMBA=1``, the scan JIT-compiles to
native code; otherwise the pure-Python loop (the reference implementation,
property-pinned byte-identical) is used.

The opt-in knob exists because JIT warm-up costs seconds — worthwhile for
long benchmark runs, pure overhead for the test suite — and because the
container images used for CI do not ship numba at all.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["two_choice_scan", "KERNELS_ENABLED"]

#: ``f(firsts, seconds, loads) -> workers`` — selects the less-loaded of the
#: two int64 candidate columns per message, updating ``loads`` (int64 array)
#: in place.  ``None`` when the compiled path is unavailable or disabled.
two_choice_scan = None

KERNELS_ENABLED = os.environ.get("REPRO_NUMBA", "") == "1"

if KERNELS_ENABLED:  # pragma: no cover - exercised only with numba installed
    try:
        import numba
    except ImportError:
        KERNELS_ENABLED = False
    else:
        @numba.njit(cache=True)
        def _two_choice_scan(
            firsts: np.ndarray, seconds: np.ndarray, loads: np.ndarray
        ) -> np.ndarray:
            out = np.empty(firsts.size, dtype=np.int64)
            for i in range(firsts.size):
                first = firsts[i]
                second = seconds[i]
                worker = first if loads[first] <= loads[second] else second
                loads[worker] += 1
                out[i] = worker
            return out

        two_choice_scan = _two_choice_scan
