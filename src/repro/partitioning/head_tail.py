"""Shared machinery for head/tail-split partitioners (Algorithm 1).

D-Choices, W-Choices and Round-Robin all follow the same skeleton:

1. feed every incoming key to a local SpaceSaving instance
   (``UPDATESPACESAVING``);
2. decide whether the key currently belongs to the head
   (estimated relative frequency >= theta);
3. head keys are placed with a scheme-specific wide strategy, tail keys with
   the standard two choices of PKG.

:class:`HeadTailPartitioner` implements steps 1-2 and the tail path, leaving
the head path to subclasses via :meth:`_select_head`.
"""

from __future__ import annotations

import math
from itertools import chain
from typing import Sequence

import numpy as np

from repro.analysis.bounds import theta_range
from repro.exceptions import ConfigurationError
from repro.hashing.hash_family import HashFamily
from repro.partitioning.base import Partitioner
from repro.sketches.base import FrequencyEstimator, runs_to_flags
from repro.sketches.space_saving import SpaceSaving
from repro.types import Key, RoutingDecision, WorkerId

#: How many counters the per-source SpaceSaving keeps relative to ``1/theta``.
#: 1.0 is the minimum that guarantees no false negatives; a little slack
#: sharpens the estimates at negligible memory cost (the sketch stays O(n)).
DEFAULT_SKETCH_SLACK = 2.0


class HeadTailPartitioner(Partitioner):
    """Base class for schemes that treat heavy hitters specially.

    Parameters
    ----------
    num_workers:
        Number of downstream workers ``n``.
    theta:
        Head threshold; defaults to the paper's ``1/(5n)``.
    seed:
        Hashing seed shared by all sources.
    sketch:
        Frequency estimator to use; defaults to a SpaceSaving sketch sized
        for ``theta``.  Ablation experiments inject MisraGries or
        LossyCounting here.
    warmup_messages:
        Number of initial messages routed purely with the tail (PKG) path
        before the sketch estimates are trusted.  Avoids declaring the very
        first keys heavy hitters on tiny samples.
    """

    def __init__(
        self,
        num_workers: int,
        theta: float | None = None,
        seed: int = 0,
        sketch: FrequencyEstimator | None = None,
        warmup_messages: int = 100,
    ) -> None:
        super().__init__(num_workers, seed)
        # A defaulted theta tracks the worker count (1/(5n)), so a rescale
        # re-derives it; an explicit theta is the caller's to keep.
        self._theta_defaulted = theta is None
        if theta is None:
            theta = theta_range(num_workers).default
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        if warmup_messages < 0:
            raise ConfigurationError(
                f"warmup_messages must be >= 0, got {warmup_messages}"
            )
        self._theta = theta
        self._warmup_messages = warmup_messages
        # Remember the provisioning slack so a rescale can re-check the
        # sizing guarantee: our own sketches are built with
        # DEFAULT_SKETCH_SLACK; for injected estimators only the bare
        # no-false-negative requirement (capacity >= 1/theta) is assumed.
        self._sketch_slack = DEFAULT_SKETCH_SLACK if sketch is None else 1.0
        if sketch is None:
            sketch = SpaceSaving.for_threshold(theta, slack=DEFAULT_SKETCH_SLACK)
        self._sketch = sketch
        # Hash functions: the tail uses the first two; head schemes may use
        # up to n of them, so allocate the full family once (never fewer than
        # two functions — the tail path always asks for two candidates, even
        # on a single-worker deployment).
        self._hashes = HashFamily(
            num_functions=max(2, num_workers), num_buckets=num_workers, seed=seed
        )
        # Per-head-key candidate tuples for the currently effective d.  Head
        # keys repeat by definition, so the head path resolves each (key, d)
        # pair once instead of re-deriving (and re-slicing) the tuple per
        # message.  Invalidated whenever d changes (lazily, via the d tag)
        # and whenever the hash family is rebuilt (rescale).
        self._head_cand_cache: dict[Key, tuple[WorkerId, ...]] = {}
        self._head_cand_cache_d = 0
        # Columnar state.  In id mode the *sketch* holds key ids, so public
        # key-based probes (is_head, current_head) translate through the
        # bound dictionary; the head candidate cache gets an id-keyed twin
        # because a key id is an int that could numerically collide with an
        # integer workload key — the two namespaces must never share a dict.
        self._id_dict = None
        self._head_cand_cache_ids: dict[int, tuple[WorkerId, ...]] = {}
        self._head_cand_cache_ids_d = 0

    # ------------------------------------------------------------------ #
    # public knobs / introspection
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> float:
        return self._theta

    @property
    def sketch(self) -> FrequencyEstimator:
        return self._sketch

    def current_head(self) -> dict[Key, int]:
        """The sketch's current estimate of the head (key -> estimated count).

        In columnar (id) mode the sketch tracks key ids; the result is
        decoded back to keys so callers always see the key namespace.
        """
        head = self._sketch.heavy_hitters(self._theta)
        if self._id_dict is not None:
            key_of = self._id_dict.key_of
            return {key_of(kid): count for kid, count in head.items()}
        return head

    def is_head(self, key: Key) -> bool:
        """Whether ``key`` currently qualifies as a heavy hitter.

        Membership uses the sketch estimate directly (estimate >= theta *
        total), so the check is O(1) — no need to materialise the whole head
        on every message.  In columnar mode the key is translated to its id
        first; probing the sketch with the raw key would be wrong even when
        the key is an int that happens to equal some id.
        """
        if self._sketch.total < self._warmup_messages:
            return False
        if self._id_dict is not None:
            kid = self._id_dict.lookup(key)
            if kid is None:
                return False
            return self._sketch.estimate(kid) >= self._theta * self._sketch.total
        return self._sketch.estimate(key) >= self._theta * self._sketch.total

    # ------------------------------------------------------------------ #
    # Partitioner implementation
    # ------------------------------------------------------------------ #
    def _select(self, key: Key) -> RoutingDecision:
        self._sketch.add(key)
        if self.is_head(key):
            return self._select_head(key)
        return self._select_tail(key)

    #: Whether the head path reads ``messages_routed`` while a batch is in
    #: flight (D-Choices' solver throttle does).  When False, the legacy
    #: interleaved batch loop skips the per-message counter store and
    #: bulk-updates at the end.
    _head_reads_message_count = False

    #: Whether the head path only reads state that the classified batch
    #: pipeline keeps exact mid-chunk (the load vector and scheme-internal
    #: cursors).  Schemes that opt in get the two-pass fast path: the whole
    #: chunk is classified in one bulk sketch pass, then routed with run
    #: loops.  Schemes whose head selection reads the *sketch* or the
    #: message counter mid-stream (D-Choices' solver throttle) must keep
    #: this False — pre-feeding the sketch past a solver checkpoint would
    #: change what the check observes — and either take the interleaved
    #: loop or split chunks at the checkpoints themselves, as D-Choices
    #: does in its own ``route_batch``.
    _head_path_chunk_safe = False

    #: Maximum number of (head key -> candidate tuple) entries interned by
    #: the head candidate cache; FIFO-evicted beyond this.  Head keys are
    #: few by definition (at most the sketch capacity at any instant), so
    #: the bound only matters on long runs with drifting heads.
    _HEAD_CANDIDATE_CACHE_LIMIT = 1 << 14

    def _select_worker(self, key: Key) -> WorkerId:
        # Fast path: same steps as _select (sketch update, head test, tail
        # two-choice) without building a RoutingDecision for the tail.
        sketch = self._sketch
        sketch.add(key)
        total = sketch.total
        if total >= self._warmup_messages and (
            sketch.estimate(key) >= self._theta * total
        ):
            return self._select_head_worker(key)
        first, second = self._hashes.candidates(key, 2)
        loads = self._state.loads
        return first if loads[first] <= loads[second] else second

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        """Batched Algorithm 1: classify the chunk in bulk, then route runs.

        Schemes whose head path is chunk-safe (see
        ``_head_path_chunk_safe``) take the two-pass pipeline: one bulk
        sketch pass classifies every message (``add_and_classify_batch``),
        then the selection pass hashes only the tail keys — vectorized — and
        places head keys with a scheme-specific run strategy (a running
        argmin over the load vector for full-freedom schemes, cached
        candidate tuples for bounded-d schemes).  Everything the selection
        pass reads evolves exactly as it would one message at a time, so the
        worker sequence is byte-identical to sequential :meth:`route` calls.

        Schemes that read the sketch or the message counter from the head
        path fall back to the interleaved per-message loop, which feeds the
        sketch in stream order.
        """
        return self._route_batch_impl(keys, head_flags, False)

    def route_batch_columnar(self, batch, head_flags=None):
        """Columnar Algorithm 1: the whole pipeline runs on key ids.

        The sketch is key-agnostic (SpaceSaving decisions depend only on
        identity, and id <-> key is a bijection), so classification over ids
        produces the same head/tail flags; hashing goes through the per-id
        candidate tables, which hash the dictionary's folded keys — the
        worker sequence is byte-identical to ``route_batch(batch.keys())``.
        A partitioner is bound to one dictionary per sketch lifetime; call
        :meth:`reset` before switching streams.
        """
        self._bind_dictionary(batch.dictionary)
        return self._route_batch_impl(batch.ids.tolist(), head_flags, True)

    def _bind_dictionary(self, dictionary) -> None:
        if self._id_dict is dictionary:
            return
        if self._id_dict is not None:
            # Ids are dictionary-relative: a new dictionary invalidates the
            # id-keyed candidate cache.  (The sketch still holds old-stream
            # ids — mixing dictionaries without reset() is unsupported.)
            self._head_cand_cache_ids.clear()
            self._head_cand_cache_ids_d = 0
        self._id_dict = dictionary

    def _route_batch_impl(
        self, keys: Sequence[Key], head_flags: list[bool] | None, id_mode: bool
    ) -> list[WorkerId]:
        """Shared batch driver; ``keys`` are ids when ``id_mode`` is set."""
        if self._head_path_chunk_safe:
            tail_keys: list[Key] = []
            runs = self._classify_runs(keys, tail_keys)
            out: list[WorkerId] = []
            self._route_runs(keys, runs, tail_keys, out, id_mode)
            self._state.messages_routed += len(out)
            if head_flags is not None:
                head_flags.extend(runs_to_flags(runs))
            return out
        return self._route_batch_interleaved(keys, head_flags, id_mode)

    def _route_batch_interleaved(
        self,
        keys: Sequence[Key],
        head_flags: list[bool] | None = None,
        id_mode: bool = False,
    ) -> list[WorkerId]:
        """Per-message batch loop: vectorized tail hashing, live bookkeeping.

        The conservative path for subclasses that have not declared their
        head path chunk-safe: every candidate pair is derived in one
        vectorized pass up front, but the sketch update, head test and head
        selection run message by message in stream order, so a head path
        may read any state (sketch, message counter) and still observe
        exactly what the scalar path would.  ``messages_routed`` is written
        per message only for schemes that read it mid-batch (see
        ``_head_reads_message_count``).
        """
        if id_mode:
            pairs = self._hashes.id_candidate_rows(
                np.asarray(keys, dtype=np.int64), self._id_dict, 2
            ).tolist()
        else:
            pairs = self._hashes.candidates_batch(keys, 2).tolist()
        state = self._state
        loads = state.loads
        sketch = self._sketch
        theta = self._theta
        warmup = self._warmup_messages
        select_head = self._select_head_worker_id if id_mode else self._select_head_worker
        live_count = self._head_reads_message_count
        flag = head_flags.append if head_flags is not None else None
        out: list[WorkerId] = []
        append = out.append
        add_and_estimate = getattr(sketch, "add_and_estimate", None)
        if add_and_estimate is not None:
            total = sketch.total
            for key, pair in zip(keys, pairs):
                total += 1
                estimate = add_and_estimate(key)
                if total >= warmup and estimate >= theta * total:
                    worker = select_head(key)
                    is_head = True
                else:
                    first, second = pair
                    worker = first if loads[first] <= loads[second] else second
                    is_head = False
                loads[worker] += 1
                if live_count:
                    state.messages_routed += 1
                append(worker)
                if flag is not None:
                    flag(is_head)
        else:
            # Injected estimators without the fused op: same steps, one call
            # more per message, and the total re-read from the sketch (no
            # assumption that add() advances it by exactly one).
            add = sketch.add
            estimate_key = sketch.estimate
            for key, pair in zip(keys, pairs):
                add(key)
                total = sketch.total
                if total >= warmup and estimate_key(key) >= theta * total:
                    worker = select_head(key)
                    is_head = True
                else:
                    first, second = pair
                    worker = first if loads[first] <= loads[second] else second
                    is_head = False
                loads[worker] += 1
                if live_count:
                    state.messages_routed += 1
                append(worker)
                if flag is not None:
                    flag(is_head)
        if not live_count:
            state.messages_routed += len(out)
        return out

    # ------------------------------------------------------------------ #
    # classified batch pipeline
    # ------------------------------------------------------------------ #
    def _classify_batch(
        self,
        keys: Sequence[Key],
        stop_at_head: bool = False,
        tail_out: list[Key] | None = None,
    ) -> list[bool]:
        """Feed ``keys`` to the sketch and return one head flag per key.

        One bulk sketch call replaces the per-message ``add`` + ``estimate``
        round trips (see ``FrequencyEstimator.add_and_classify_batch``).
        With ``stop_at_head`` the pass — and crucially the sketch feed —
        stops right after the first head-classified key, leaving the sketch
        parked at that message; D-Choices relies on this to read head
        signatures at solver checkpoints with exactly the scalar-path view.
        ``tail_out`` collects the tail run during the same pass.  Duck-typed
        estimators without the bulk op get the reference loop.
        """
        bulk = getattr(self._sketch, "add_and_classify_batch", None)
        if bulk is not None:
            return bulk(
                keys, self._theta, self._warmup_messages, stop_at_head, tail_out
            )
        sketch = self._sketch
        theta = self._theta
        warmup = self._warmup_messages
        add = sketch.add
        estimate = sketch.estimate
        flags: list[bool] = []
        append = flags.append
        tail_append = tail_out.append if tail_out is not None else None
        for key in keys:
            add(key)
            total = sketch.total
            is_head = total >= warmup and estimate(key) >= theta * total
            append(is_head)
            if not is_head and tail_append is not None:
                tail_append(key)
            if stop_at_head and is_head:
                break
        return flags

    def _classify_runs(
        self, keys: Sequence[Key], tail_out: list[Key]
    ) -> list[int]:
        """Run-length classification of a chunk (see ``add_and_classify_runs``).

        Returns the head-run lengths around each tail message and fills
        ``tail_out`` with the tail keys, all in one sketch pass.  Duck-typed
        estimators without the bulk ops are classified with the reference
        loop and converted.
        """
        bulk = getattr(self._sketch, "add_and_classify_runs", None)
        if bulk is not None:
            return bulk(keys, self._theta, self._warmup_messages, tail_out)
        flags = self._classify_batch(keys, tail_out=tail_out)
        runs = [0]
        for is_head in flags:
            if is_head:
                runs[-1] += 1
            else:
                runs.append(0)
        return runs

    def _route_runs(
        self,
        keys: Sequence[Key],
        runs: Sequence[int],
        tail_keys: Sequence[Key],
        out: list[WorkerId],
        id_mode: bool = False,
    ) -> None:
        """Route a run-length-classified chunk, appending to ``out``.

        The chunk arrives pre-split into alternating head runs and tail
        messages (``runs[i]`` heads, then ``tail_keys[i]``, ...; the last
        entry of ``runs`` is the trailing head run).  Tail placements walk
        the vectorized candidate columns; head runs count down with no
        per-message flag or key touch in "all" mode — full-freedom
        placement needs nothing but the load vector — while "d" and "call"
        modes track the stream position to recover the head keys from
        ``keys``.  ``messages_routed`` is the caller's to update.
        """
        loads = self._state.loads
        append = out.append
        if len(keys) <= 24:
            # Short fragment (single-message chunks, D-Choices checkpoint
            # remnants): the fixed setup of the vectorized path — numpy
            # round trip, argmin-queue seeding — costs more than routing
            # the handful of messages against the scalar helpers.
            self._route_runs_scalar(keys, runs, out, id_mode)
            return
        if tail_keys:
            if id_mode:
                firsts, seconds = self._hashes.id_candidate_columns(
                    np.asarray(tail_keys, dtype=np.int64), self._id_dict, 2
                )
            else:
                firsts, seconds = self._hashes.candidates_batch_columns(tail_keys, 2)
        else:
            firsts = seconds = ()
        # One sentinel pair past the real tails pairs the trailing head run
        # with the same loop body; len(runs) == len(tail_keys) + 1, so zip
        # consumes exactly the sentinel for the final entry.
        paired = zip(runs, chain(firsts, (None,)), chain(seconds, (None,)))
        mode, num_choices = self._head_selection()
        if mode == "all":
            level, queue = self._min_load_level()
            position = 0
            fill = len(queue)
            for run, first, second in paired:
                while run:
                    run -= 1
                    while True:
                        if position == fill:
                            level, queue = self._min_load_level()
                            position = 0
                            fill = len(queue)
                        worker = queue[position]
                        position += 1
                        if loads[worker] == level:
                            break
                    loads[worker] = level + 1
                    append(worker)
                if first is None:
                    break
                worker = first if loads[first] <= loads[second] else second
                loads[worker] += 1
                append(worker)
        elif mode == "d":
            # The cache-tag handshake runs once up front so the hot path may
            # read the cache directly; misses go through
            # _cached_head_candidates, the single home of the dedupe /
            # FIFO-eviction logic (its re-check of the tag is then a no-op).
            num_choices = max(2, min(num_choices, self.num_workers))
            if id_mode:
                cache = self._head_cand_cache_ids
                if num_choices != self._head_cand_cache_ids_d:
                    cache.clear()
                    self._head_cand_cache_ids_d = num_choices
                cached_candidates = self._cached_head_candidates_id
            else:
                cache = self._head_cand_cache
                if num_choices != self._head_cand_cache_d:
                    cache.clear()
                    self._head_cand_cache_d = num_choices
                cached_candidates = self._cached_head_candidates
            cache_get = cache.get
            stream_at = 0
            for run, first, second in paired:
                while run:
                    run -= 1
                    key = keys[stream_at]
                    stream_at += 1
                    candidates = cache_get(key)
                    if candidates is None:
                        candidates = cached_candidates(key, num_choices)
                    scan = iter(candidates)
                    worker = next(scan)
                    best_load = loads[worker]
                    for candidate in scan:
                        load = loads[candidate]
                        if load < best_load:
                            worker = candidate
                            best_load = load
                    loads[worker] += 1
                    append(worker)
                if first is None:
                    break
                stream_at += 1
                worker = first if loads[first] <= loads[second] else second
                loads[worker] += 1
                append(worker)
        else:
            select_head = (
                self._select_head_worker_id if id_mode else self._select_head_worker
            )
            stream_at = 0
            for run, first, second in paired:
                while run:
                    run -= 1
                    worker = select_head(keys[stream_at])
                    stream_at += 1
                    loads[worker] += 1
                    append(worker)
                if first is None:
                    break
                stream_at += 1
                worker = first if loads[first] <= loads[second] else second
                loads[worker] += 1
                append(worker)

    def _route_runs_scalar(
        self,
        keys: Sequence[Key],
        runs: Sequence[int],
        out: list[WorkerId],
        id_mode: bool = False,
    ) -> None:
        """Scalar fallback of :meth:`_route_runs` for short fragments."""
        loads = self._state.loads
        append = out.append
        if id_mode:
            family = self._hashes
            id_dict = self._id_dict
            tail_candidates = lambda key: family.candidates_for_id(key, id_dict, 2)
            head_cached = self._cached_head_candidates_id
            select_head = self._select_head_worker_id
        else:
            family_candidates = self._hashes.candidates
            tail_candidates = lambda key: family_candidates(key, 2)
            head_cached = self._cached_head_candidates
            select_head = self._select_head_worker
        mode, num_choices = self._head_selection()
        run_iter = iter(runs)
        run = next(run_iter)
        for key in keys:
            if run:
                run -= 1
                if mode == "all":
                    worker = loads.index(min(loads))
                elif mode == "d":
                    worker = self._least_loaded(head_cached(key, num_choices))
                else:
                    worker = select_head(key)
            else:
                run = next(run_iter)
                first, second = tail_candidates(key)
                worker = first if loads[first] <= loads[second] else second
            loads[worker] += 1
            append(worker)

    def _head_selection(self) -> tuple[str, int]:
        """How the classified pipeline should place head keys right now.

        ``("all", 0)`` — least-loaded of all workers (W-Choices and the
        D-Choices degradation), served by the running-argmin queue;
        ``("d", d)`` — least-loaded of ``d`` hash-derived candidates, served
        by the head candidate cache; ``("call", 0)`` — per-message
        :meth:`_select_head_worker`, for head paths with scheme-internal
        state (Round-Robin's cursor).  Re-consulted at every classified run
        so schemes whose mode is dynamic (D-Choices after a solver refresh)
        switch at exactly the boundaries where their state can change.
        """
        return ("call", 0)

    def _cached_head_candidates(self, key: Key, num_choices: int) -> tuple[WorkerId, ...]:
        """The head candidate set of ``key``, interned per (key, d).

        Same clamping as :meth:`_head_candidates`, but the cached tuple is
        *deduplicated* (first occurrence kept, order preserved): a repeated
        candidate can never win a least-loaded scan — the first occurrence
        already set ``best_load`` at most that low and the comparison is
        strict — so dropping it changes nothing while shortening every
        subsequent scan (d hash draws over n workers repeat themselves with
        noticeable probability once d is a fair fraction of n).  The cache
        is tagged with the effective d and flushed lazily whenever it
        changes (a D-Choices solver refresh), and eagerly when the hash
        family is rebuilt (rescale) — stale tuples would otherwise leak
        pre-rescale workers.
        """
        num_choices = max(2, min(num_choices, self.num_workers))
        cache = self._head_cand_cache
        if num_choices != self._head_cand_cache_d:
            cache.clear()
            self._head_cand_cache_d = num_choices
        candidates = cache.get(key)
        if candidates is None:
            candidates = tuple(
                dict.fromkeys(self._hashes.candidates(key, num_choices))
            )
            if len(cache) >= self._HEAD_CANDIDATE_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[key] = candidates
        return candidates

    def _cached_head_candidates_id(
        self, kid: int, num_choices: int
    ) -> tuple[WorkerId, ...]:
        """Id-keyed twin of :meth:`_cached_head_candidates` (columnar path).

        Kept strictly separate from the key-keyed cache: an id is a plain
        int that may numerically equal an integer workload key, and the two
        must never alias.  Candidates come from the per-id table, so they
        equal the key-path tuples bit for bit.
        """
        num_choices = max(2, min(num_choices, self.num_workers))
        cache = self._head_cand_cache_ids
        if num_choices != self._head_cand_cache_ids_d:
            cache.clear()
            self._head_cand_cache_ids_d = num_choices
        candidates = cache.get(kid)
        if candidates is None:
            candidates = tuple(
                dict.fromkeys(
                    self._hashes.candidates_for_id(kid, self._id_dict, num_choices)
                )
            )
            if len(cache) >= self._HEAD_CANDIDATE_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[kid] = candidates
        return candidates

    def _route_tail_span(
        self,
        tail_keys: Sequence[Key],
        out: list[WorkerId],
        id_mode: bool = False,
    ) -> None:
        """Route a run of tail-classified keys (two-choice), appending to
        ``out``.

        D-Choices' checkpoint scans classify a (usually tiny) all-tail
        prefix before the head message that fires the solver check; short
        spans take scalar candidate lookups — the numpy round trip costs
        more than it saves below a couple dozen messages — and longer ones
        the vectorized columns.  ``messages_routed`` is the caller's to
        update.
        """
        loads = self._state.loads
        append = out.append
        if len(tail_keys) <= 24:
            if id_mode:
                family = self._hashes
                id_dict = self._id_dict
                for key in tail_keys:
                    first, second = family.candidates_for_id(key, id_dict, 2)
                    worker = first if loads[first] <= loads[second] else second
                    loads[worker] += 1
                    append(worker)
            else:
                candidates_of = self._hashes.candidates
                for key in tail_keys:
                    first, second = candidates_of(key, 2)
                    worker = first if loads[first] <= loads[second] else second
                    loads[worker] += 1
                    append(worker)
            return
        if id_mode:
            firsts, seconds = self._hashes.id_candidate_columns(
                np.asarray(tail_keys, dtype=np.int64), self._id_dict, 2
            )
        else:
            firsts, seconds = self._hashes.candidates_batch_columns(tail_keys, 2)
        for first, second in zip(firsts, seconds):
            worker = first if loads[first] <= loads[second] else second
            loads[worker] += 1
            append(worker)

    def _select_tail(self, key: Key) -> RoutingDecision:
        """Tail path: the standard two choices of PKG."""
        candidates = self._hashes.candidates(key, 2)
        worker = self._least_loaded(candidates)
        return RoutingDecision(
            key=key, worker=worker, candidates=candidates, is_head=False
        )

    def _select_head(self, key: Key) -> RoutingDecision:
        """Head path; must be provided by the concrete scheme."""
        raise NotImplementedError

    def _select_head_worker(self, key: Key) -> WorkerId:
        """Allocation-free head path; schemes override for the hot loop.

        The default delegates to :meth:`_select_head`, so subclasses that
        only implement the decision variant stay correct (just slower).
        """
        return self._select_head(key).worker

    def _select_head_worker_id(self, kid: int) -> WorkerId:
        """Head placement addressed by key id ("call"-mode columnar path).

        The default decodes and delegates — correct for any scheme.
        Subclasses whose head selection ignores the key (Round-Robin) or is
        id-addressable (D-Choices' solved selector) override to skip the
        decode.
        """
        return self._select_head_worker(self._id_dict.key_of(kid))

    def reset(self) -> None:
        super().reset()
        # Every built-in sketch resets in place; injected estimators without
        # a reset() keep their counts (documented best-effort behaviour).
        reset = getattr(self._sketch, "reset", None)
        if callable(reset):
            reset()
        # Candidate tuples would still be valid (hashing is untouched), but
        # a reset is a fresh start: drop them so the cache cannot outlive
        # whatever population the new stream brings.
        self._head_cand_cache.clear()
        self._head_cand_cache_d = 0
        self._head_cand_cache_ids.clear()
        self._head_cand_cache_ids_d = 0
        self._id_dict = None

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        """Incremental rescale: new hash family, *preserved* head table.

        The hash functions are modulo the worker count, so tail candidate
        pairs are redrawn; the SpaceSaving sketch, however, is sender-local
        frequency knowledge that survives a topology change unchanged —
        throwing it away would force every scheme back through the warmup
        before heavy hitters are treated specially again.  A defaulted
        theta is re-derived for the new worker count.  Shrinks only raise
        theta, so the original capacity keeps upper-bounding the head; a
        *join*, however, lowers theta (1/(5n) falls as n grows), and once
        ``1/theta_new`` exceeds the sketch's capacity the no-false-negative
        guarantee breaks — a true heavy hitter could be evicted and silently
        routed down the tail path.  The sketch is therefore grown in place
        (monitored counters preserved) whenever the re-derived theta needs
        more counters than it was provisioned with.
        """
        if self._theta_defaulted:
            self._theta = theta_range(new_num_workers).default
            self._ensure_sketch_capacity()
        self._hashes = HashFamily(
            num_functions=max(2, new_num_workers),
            num_buckets=new_num_workers,
            seed=self.seed,
        )
        # The hash family above was just rebuilt for the new bucket count:
        # every cached head candidate tuple now points at pre-rescale
        # workers and must go, whatever d it was derived for.  (The rebuild
        # also drops the old family's per-id candidate tables — that is the
        # columnar invalidation path.)  The dictionary binding survives: the
        # sketch still holds this stream's ids.
        self._head_cand_cache.clear()
        self._head_cand_cache_d = 0
        self._head_cand_cache_ids.clear()
        self._head_cand_cache_ids_d = 0

    def _ensure_sketch_capacity(self) -> None:
        """Grow the sketch when the current theta needs more counters.

        Best-effort for injected estimators: only sketches exposing both
        ``capacity`` and ``grow`` (SpaceSaving does) are resized; growth
        preserves every monitored count, so the head table survives.
        """
        capacity = getattr(self._sketch, "capacity", None)
        grow = getattr(self._sketch, "grow", None)
        if capacity is None or not callable(grow):
            return
        required = max(1, math.ceil(self._sketch_slack / self._theta))
        if capacity < required:
            grow(required)

    def _export_structures(self, state: dict) -> None:
        state["theta"] = self._theta
        state["warmup_messages"] = self._warmup_messages
        export = getattr(self._sketch, "export_state", None)
        if callable(export):
            state["sketch"] = export()
        # The candidate caches are pure derivations, but re-deriving them is
        # the only cost a switch pays per hot key — carry them along, tagged
        # with the hashing identity they were derived under.
        state["head_cand_cache"] = (dict(self._head_cand_cache), self._head_cand_cache_d)
        state["head_cand_cache_ids"] = (
            dict(self._head_cand_cache_ids),
            self._head_cand_cache_ids_d,
        )
        state["id_dictionary"] = self._id_dict

    def _adopt_structures(self, state) -> None:
        sketch_state = state.get("sketch")
        if sketch_state is not None:
            # Re-seed the head table from the donor instead of cold-starting:
            # the monitored counters, their summary order and the stream
            # total all carry over, so warmup is already behind us and the
            # head is hot from the first adopted message.  The capacity is
            # at least what *this* scheme's theta requires — an adopter with
            # a smaller theta gets the extra counters its guarantee needs.
            required = max(1, math.ceil(self._sketch_slack / self._theta))
            capacity = max(required, int(sketch_state["capacity"]))
            self._sketch = SpaceSaving.from_state(sketch_state, capacity=capacity)
        dictionary = state.get("id_dictionary")
        if dictionary is not None:
            self._id_dict = dictionary
        if state.get("seed") == self._seed and state.get("num_workers") == self._num_workers:
            # Same hash family: the donor's candidate tuples are ours too.
            cache, cache_d = state.get("head_cand_cache", ({}, 0))
            self._head_cand_cache = dict(cache)
            self._head_cand_cache_d = cache_d
            cache_ids, cache_ids_d = state.get("head_cand_cache_ids", ({}, 0))
            self._head_cand_cache_ids = dict(cache_ids)
            self._head_cand_cache_ids_d = cache_ids_d
        else:
            self._head_cand_cache.clear()
            self._head_cand_cache_d = 0
            self._head_cand_cache_ids.clear()
            self._head_cand_cache_ids_d = 0

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        """Pure candidate set: head keys via the scheme's head placement,
        tail keys via the two PKG choices (no sketch mutation)."""
        if self.is_head(key):
            return self._head_key_candidates(key)
        return self._hashes.candidates(key, 2)

    def _head_key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        """Pure head candidate set; default is full placement freedom
        (W-Choices, Round-Robin), schemes with bounded heads override."""
        return tuple(range(self.num_workers))

    # helper for subclasses that need the candidate tuple of d hashes
    def _head_candidates(self, key: Key, num_choices: int) -> tuple[WorkerId, ...]:
        num_choices = max(2, min(num_choices, self.num_workers))
        return self._hashes.candidates(key, num_choices)
