"""Shared machinery for head/tail-split partitioners (Algorithm 1).

D-Choices, W-Choices and Round-Robin all follow the same skeleton:

1. feed every incoming key to a local SpaceSaving instance
   (``UPDATESPACESAVING``);
2. decide whether the key currently belongs to the head
   (estimated relative frequency >= theta);
3. head keys are placed with a scheme-specific wide strategy, tail keys with
   the standard two choices of PKG.

:class:`HeadTailPartitioner` implements steps 1-2 and the tail path, leaving
the head path to subclasses via :meth:`_select_head`.
"""

from __future__ import annotations

from repro.analysis.bounds import theta_range
from repro.exceptions import ConfigurationError
from repro.hashing.hash_family import HashFamily
from repro.partitioning.base import Partitioner
from repro.sketches.base import FrequencyEstimator
from repro.sketches.space_saving import SpaceSaving
from repro.types import Key, RoutingDecision, WorkerId

#: How many counters the per-source SpaceSaving keeps relative to ``1/theta``.
#: 1.0 is the minimum that guarantees no false negatives; a little slack
#: sharpens the estimates at negligible memory cost (the sketch stays O(n)).
DEFAULT_SKETCH_SLACK = 2.0


class HeadTailPartitioner(Partitioner):
    """Base class for schemes that treat heavy hitters specially.

    Parameters
    ----------
    num_workers:
        Number of downstream workers ``n``.
    theta:
        Head threshold; defaults to the paper's ``1/(5n)``.
    seed:
        Hashing seed shared by all sources.
    sketch:
        Frequency estimator to use; defaults to a SpaceSaving sketch sized
        for ``theta``.  Ablation experiments inject MisraGries or
        LossyCounting here.
    warmup_messages:
        Number of initial messages routed purely with the tail (PKG) path
        before the sketch estimates are trusted.  Avoids declaring the very
        first keys heavy hitters on tiny samples.
    """

    def __init__(
        self,
        num_workers: int,
        theta: float | None = None,
        seed: int = 0,
        sketch: FrequencyEstimator | None = None,
        warmup_messages: int = 100,
    ) -> None:
        super().__init__(num_workers, seed)
        if theta is None:
            theta = theta_range(num_workers).default
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        if warmup_messages < 0:
            raise ConfigurationError(
                f"warmup_messages must be >= 0, got {warmup_messages}"
            )
        self._theta = theta
        self._warmup_messages = warmup_messages
        if sketch is None:
            sketch = SpaceSaving.for_threshold(theta, slack=DEFAULT_SKETCH_SLACK)
        self._sketch = sketch
        # Hash functions: the tail uses the first two; head schemes may use
        # up to n of them, so allocate the full family once (never fewer than
        # two functions — the tail path always asks for two candidates, even
        # on a single-worker deployment).
        self._hashes = HashFamily(
            num_functions=max(2, num_workers), num_buckets=num_workers, seed=seed
        )

    # ------------------------------------------------------------------ #
    # public knobs / introspection
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> float:
        return self._theta

    @property
    def sketch(self) -> FrequencyEstimator:
        return self._sketch

    def current_head(self) -> dict[Key, int]:
        """The sketch's current estimate of the head (key -> estimated count)."""
        return self._sketch.heavy_hitters(self._theta)

    def is_head(self, key: Key) -> bool:
        """Whether ``key`` currently qualifies as a heavy hitter.

        Membership uses the sketch estimate directly (estimate >= theta *
        total), so the check is O(1) — no need to materialise the whole head
        on every message.
        """
        if self._sketch.total < self._warmup_messages:
            return False
        return self._sketch.estimate(key) >= self._theta * self._sketch.total

    # ------------------------------------------------------------------ #
    # Partitioner implementation
    # ------------------------------------------------------------------ #
    def _select(self, key: Key) -> RoutingDecision:
        self._sketch.add(key)
        if self.is_head(key):
            return self._select_head(key)
        return self._select_tail(key)

    def _select_tail(self, key: Key) -> RoutingDecision:
        """Tail path: the standard two choices of PKG."""
        candidates = self._hashes.candidates(key, 2)
        worker = self._least_loaded(candidates)
        return RoutingDecision(
            key=key, worker=worker, candidates=candidates, is_head=False
        )

    def _select_head(self, key: Key) -> RoutingDecision:
        """Head path; must be provided by the concrete scheme."""
        raise NotImplementedError

    def reset(self) -> None:
        super().reset()
        if isinstance(self._sketch, SpaceSaving):
            self._sketch = SpaceSaving(self._sketch.capacity)
        else:
            # Best effort for injected sketches: recreate via type(capacity)
            # is not generally possible, so just keep the old one cleared if
            # it offers a reset, otherwise leave it (documented behaviour).
            reset = getattr(self._sketch, "reset", None)
            if callable(reset):
                reset()

    # helper for subclasses that need the candidate tuple of d hashes
    def _head_candidates(self, key: Key, num_choices: int) -> tuple[WorkerId, ...]:
        num_choices = max(2, min(num_choices, self.num_workers))
        return self._hashes.candidates(key, num_choices)
