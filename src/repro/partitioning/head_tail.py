"""Shared machinery for head/tail-split partitioners (Algorithm 1).

D-Choices, W-Choices and Round-Robin all follow the same skeleton:

1. feed every incoming key to a local SpaceSaving instance
   (``UPDATESPACESAVING``);
2. decide whether the key currently belongs to the head
   (estimated relative frequency >= theta);
3. head keys are placed with a scheme-specific wide strategy, tail keys with
   the standard two choices of PKG.

:class:`HeadTailPartitioner` implements steps 1-2 and the tail path, leaving
the head path to subclasses via :meth:`_select_head`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.bounds import theta_range
from repro.exceptions import ConfigurationError
from repro.hashing.hash_family import HashFamily
from repro.partitioning.base import Partitioner
from repro.sketches.base import FrequencyEstimator
from repro.sketches.space_saving import SpaceSaving
from repro.types import Key, RoutingDecision, WorkerId

#: How many counters the per-source SpaceSaving keeps relative to ``1/theta``.
#: 1.0 is the minimum that guarantees no false negatives; a little slack
#: sharpens the estimates at negligible memory cost (the sketch stays O(n)).
DEFAULT_SKETCH_SLACK = 2.0


class HeadTailPartitioner(Partitioner):
    """Base class for schemes that treat heavy hitters specially.

    Parameters
    ----------
    num_workers:
        Number of downstream workers ``n``.
    theta:
        Head threshold; defaults to the paper's ``1/(5n)``.
    seed:
        Hashing seed shared by all sources.
    sketch:
        Frequency estimator to use; defaults to a SpaceSaving sketch sized
        for ``theta``.  Ablation experiments inject MisraGries or
        LossyCounting here.
    warmup_messages:
        Number of initial messages routed purely with the tail (PKG) path
        before the sketch estimates are trusted.  Avoids declaring the very
        first keys heavy hitters on tiny samples.
    """

    def __init__(
        self,
        num_workers: int,
        theta: float | None = None,
        seed: int = 0,
        sketch: FrequencyEstimator | None = None,
        warmup_messages: int = 100,
    ) -> None:
        super().__init__(num_workers, seed)
        # A defaulted theta tracks the worker count (1/(5n)), so a rescale
        # re-derives it; an explicit theta is the caller's to keep.
        self._theta_defaulted = theta is None
        if theta is None:
            theta = theta_range(num_workers).default
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        if warmup_messages < 0:
            raise ConfigurationError(
                f"warmup_messages must be >= 0, got {warmup_messages}"
            )
        self._theta = theta
        self._warmup_messages = warmup_messages
        # Remember the provisioning slack so a rescale can re-check the
        # sizing guarantee: our own sketches are built with
        # DEFAULT_SKETCH_SLACK; for injected estimators only the bare
        # no-false-negative requirement (capacity >= 1/theta) is assumed.
        self._sketch_slack = DEFAULT_SKETCH_SLACK if sketch is None else 1.0
        if sketch is None:
            sketch = SpaceSaving.for_threshold(theta, slack=DEFAULT_SKETCH_SLACK)
        self._sketch = sketch
        # Hash functions: the tail uses the first two; head schemes may use
        # up to n of them, so allocate the full family once (never fewer than
        # two functions — the tail path always asks for two candidates, even
        # on a single-worker deployment).
        self._hashes = HashFamily(
            num_functions=max(2, num_workers), num_buckets=num_workers, seed=seed
        )

    # ------------------------------------------------------------------ #
    # public knobs / introspection
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> float:
        return self._theta

    @property
    def sketch(self) -> FrequencyEstimator:
        return self._sketch

    def current_head(self) -> dict[Key, int]:
        """The sketch's current estimate of the head (key -> estimated count)."""
        return self._sketch.heavy_hitters(self._theta)

    def is_head(self, key: Key) -> bool:
        """Whether ``key`` currently qualifies as a heavy hitter.

        Membership uses the sketch estimate directly (estimate >= theta *
        total), so the check is O(1) — no need to materialise the whole head
        on every message.
        """
        if self._sketch.total < self._warmup_messages:
            return False
        return self._sketch.estimate(key) >= self._theta * self._sketch.total

    # ------------------------------------------------------------------ #
    # Partitioner implementation
    # ------------------------------------------------------------------ #
    def _select(self, key: Key) -> RoutingDecision:
        self._sketch.add(key)
        if self.is_head(key):
            return self._select_head(key)
        return self._select_tail(key)

    #: Whether the head path reads ``messages_routed`` while a batch is in
    #: flight (D-Choices' solver throttle does).  When False, route_batch
    #: skips the per-message counter store and bulk-updates at the end.
    _head_reads_message_count = False

    def _select_worker(self, key: Key) -> WorkerId:
        # Fast path: same steps as _select (sketch update, head test, tail
        # two-choice) without building a RoutingDecision for the tail.
        sketch = self._sketch
        sketch.add(key)
        total = sketch.total
        if total >= self._warmup_messages and (
            sketch.estimate(key) >= self._theta * total
        ):
            return self._select_head_worker(key)
        first, second = self._hashes.candidates(key, 2)
        loads = self._state.loads
        return first if loads[first] <= loads[second] else second

    def route_batch(
        self, keys: Sequence[Key], head_flags: list[bool] | None = None
    ) -> list[WorkerId]:
        """Batched Algorithm 1: vectorized tail hashing, shared bookkeeping.

        The two tail candidates of every key in the batch are derived in one
        vectorized pass; the selection loop then only pays the sketch update,
        the O(1) head test and a two-way load comparison per message.  Head
        keys defer to :meth:`_select_head_worker` exactly as the scalar path
        does, so the worker sequence is identical to one-at-a-time routing.

        Loop-invariant lookups are hoisted: the sketch update and head test
        fuse into one ``add_and_estimate`` call when the sketch provides it
        (SpaceSaving does), the observed total is tracked as a local counter
        (unit adds advance it by exactly one), and ``messages_routed`` is
        written per message only for schemes whose head path reads it
        mid-batch (see ``_head_reads_message_count``).
        """
        pairs = self._hashes.candidates_batch(keys, 2).tolist()
        state = self._state
        loads = state.loads
        sketch = self._sketch
        theta = self._theta
        warmup = self._warmup_messages
        select_head = self._select_head_worker
        live_count = self._head_reads_message_count
        flag = head_flags.append if head_flags is not None else None
        out: list[WorkerId] = []
        append = out.append
        add_and_estimate = getattr(sketch, "add_and_estimate", None)
        if add_and_estimate is not None:
            total = sketch.total
            for key, pair in zip(keys, pairs):
                total += 1
                estimate = add_and_estimate(key)
                if total >= warmup and estimate >= theta * total:
                    worker = select_head(key)
                    is_head = True
                else:
                    first, second = pair
                    worker = first if loads[first] <= loads[second] else second
                    is_head = False
                loads[worker] += 1
                if live_count:
                    state.messages_routed += 1
                append(worker)
                if flag is not None:
                    flag(is_head)
        else:
            # Injected estimators without the fused op: same steps, one call
            # more per message, and the total re-read from the sketch (no
            # assumption that add() advances it by exactly one).
            add = sketch.add
            estimate_key = sketch.estimate
            for key, pair in zip(keys, pairs):
                add(key)
                total = sketch.total
                if total >= warmup and estimate_key(key) >= theta * total:
                    worker = select_head(key)
                    is_head = True
                else:
                    first, second = pair
                    worker = first if loads[first] <= loads[second] else second
                    is_head = False
                loads[worker] += 1
                if live_count:
                    state.messages_routed += 1
                append(worker)
                if flag is not None:
                    flag(is_head)
        if not live_count:
            state.messages_routed += len(out)
        return out

    def _select_tail(self, key: Key) -> RoutingDecision:
        """Tail path: the standard two choices of PKG."""
        candidates = self._hashes.candidates(key, 2)
        worker = self._least_loaded(candidates)
        return RoutingDecision(
            key=key, worker=worker, candidates=candidates, is_head=False
        )

    def _select_head(self, key: Key) -> RoutingDecision:
        """Head path; must be provided by the concrete scheme."""
        raise NotImplementedError

    def _select_head_worker(self, key: Key) -> WorkerId:
        """Allocation-free head path; schemes override for the hot loop.

        The default delegates to :meth:`_select_head`, so subclasses that
        only implement the decision variant stay correct (just slower).
        """
        return self._select_head(key).worker

    def reset(self) -> None:
        super().reset()
        # Every built-in sketch resets in place; injected estimators without
        # a reset() keep their counts (documented best-effort behaviour).
        reset = getattr(self._sketch, "reset", None)
        if callable(reset):
            reset()

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        """Incremental rescale: new hash family, *preserved* head table.

        The hash functions are modulo the worker count, so tail candidate
        pairs are redrawn; the SpaceSaving sketch, however, is sender-local
        frequency knowledge that survives a topology change unchanged —
        throwing it away would force every scheme back through the warmup
        before heavy hitters are treated specially again.  A defaulted
        theta is re-derived for the new worker count.  Shrinks only raise
        theta, so the original capacity keeps upper-bounding the head; a
        *join*, however, lowers theta (1/(5n) falls as n grows), and once
        ``1/theta_new`` exceeds the sketch's capacity the no-false-negative
        guarantee breaks — a true heavy hitter could be evicted and silently
        routed down the tail path.  The sketch is therefore grown in place
        (monitored counters preserved) whenever the re-derived theta needs
        more counters than it was provisioned with.
        """
        if self._theta_defaulted:
            self._theta = theta_range(new_num_workers).default
            self._ensure_sketch_capacity()
        self._hashes = HashFamily(
            num_functions=max(2, new_num_workers),
            num_buckets=new_num_workers,
            seed=self.seed,
        )

    def _ensure_sketch_capacity(self) -> None:
        """Grow the sketch when the current theta needs more counters.

        Best-effort for injected estimators: only sketches exposing both
        ``capacity`` and ``grow`` (SpaceSaving does) are resized; growth
        preserves every monitored count, so the head table survives.
        """
        capacity = getattr(self._sketch, "capacity", None)
        grow = getattr(self._sketch, "grow", None)
        if capacity is None or not callable(grow):
            return
        required = max(1, math.ceil(self._sketch_slack / self._theta))
        if capacity < required:
            grow(required)

    def key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        """Pure candidate set: head keys via the scheme's head placement,
        tail keys via the two PKG choices (no sketch mutation)."""
        if self.is_head(key):
            return self._head_key_candidates(key)
        return self._hashes.candidates(key, 2)

    def _head_key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        """Pure head candidate set; default is full placement freedom
        (W-Choices, Round-Robin), schemes with bounded heads override."""
        return tuple(range(self.num_workers))

    # helper for subclasses that need the candidate tuple of d hashes
    def _head_candidates(self, key: Key, num_choices: int) -> tuple[WorkerId, ...]:
        num_choices = max(2, min(num_choices, self.num_workers))
        return self._hashes.candidates(key, num_choices)
