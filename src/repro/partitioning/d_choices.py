"""D-Choices: head keys get the minimal sufficient number of choices ``d``.

The scheme follows Algorithm 1 of the paper with the D-CHOICES branch:

* every key updates the local SpaceSaving sketch;
* tail keys use the two PKG choices;
* head keys use ``d = FINDOPTIMALCHOICES()`` hash-derived candidates, where
  ``d`` is the smallest value satisfying the Proposition 4.1 constraints for
  the *currently estimated* head distribution;
* if the solver concludes that ``d >= n`` is needed, the key is placed on the
  least-loaded of all workers, i.e. the scheme degrades gracefully into
  W-Choices (as prescribed at the end of Section IV-A).

Solving for ``d`` on every message would be wasteful, so the solution is
cached and recomputed only when the estimated head changes materially (new
cardinality, new hottest-key frequency) or after ``recompute_interval``
messages — whichever comes first.  This is an implementation choice, not a
deviation: the solver input only changes when the sketch's view of the head
changes.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.choices import DEFAULT_EPSILON, ChoicesSolution, find_optimal_choices
from repro.exceptions import ConfigurationError
from repro.partitioning.head_tail import HeadTailPartitioner
from repro.sketches.base import FrequencyEstimator, runs_to_flags
from repro.types import Key, RoutingDecision, WorkerId


class DChoices(HeadTailPartitioner):
    """Head/tail split with an analytically minimal ``d`` for the head.

    Parameters
    ----------
    num_workers:
        Number of downstream workers ``n``.
    theta:
        Head threshold (default ``1/(5n)``).
    epsilon:
        Imbalance tolerance fed to the constraint solver (paper default
        ``1e-4``).
    recompute_interval:
        Upper bound on the number of routed messages between two solver
        runs.  The solution is also refreshed whenever the estimated head
        changes size or its hottest frequency moves by more than 10%.
    check_interval:
        How often (in routed messages) the head signature is re-examined at
        all.  Scanning the sketch on every hot-key message would dominate the
        routing cost, so the signature check itself is throttled; the
        default of 200 messages keeps the reaction to drift well below the
        paper's per-hour reporting granularity.

    Examples
    --------
    >>> dc = DChoices(num_workers=8, seed=1)
    >>> for _ in range(1000):
    ...     _ = dc.route("hot")        # a single extremely hot key
    >>> dc.current_num_choices() >= 2
    True
    """

    name = "D-C"

    #: The solver-recompute throttle reads messages_routed per head message.
    #: D-Choices ships its own route_batch (checkpoint splitting), but the
    #: flag keeps the conservative interleaved loop correct for subclasses
    #: that fall back to it.
    _head_reads_message_count = True

    def __init__(
        self,
        num_workers: int,
        theta: float | None = None,
        seed: int = 0,
        epsilon: float = DEFAULT_EPSILON,
        sketch: FrequencyEstimator | None = None,
        warmup_messages: int = 100,
        recompute_interval: int = 1000,
        check_interval: int = 200,
    ) -> None:
        super().__init__(
            num_workers,
            theta=theta,
            seed=seed,
            sketch=sketch,
            warmup_messages=warmup_messages,
        )
        if epsilon < 0.0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
        if recompute_interval < 1:
            raise ConfigurationError(
                f"recompute_interval must be >= 1, got {recompute_interval}"
            )
        if check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        self._epsilon = epsilon
        self._recompute_interval = recompute_interval
        self._check_interval = check_interval
        self._solution = ChoicesSolution(
            num_choices=2, use_w_choices=False, head_cardinality=0
        )
        self._messages_at_last_solve = 0
        self._messages_at_last_check = 0
        self._never_solved = True
        self._head_signature: tuple[int, float] = (0, 0.0)

    # ------------------------------------------------------------------ #
    # public introspection
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        return self._epsilon

    def current_num_choices(self) -> int:
        """The ``d`` currently applied to head keys."""
        return self._solution.num_choices

    def current_solution(self) -> ChoicesSolution:
        """The most recent output of the constraint solver."""
        return self._solution

    # ------------------------------------------------------------------ #
    # FINDOPTIMALCHOICES with caching
    # ------------------------------------------------------------------ #
    def _find_optimal_choices(self) -> ChoicesSolution:
        sketch = self._sketch
        total = sketch.total
        # The solver consumes the sorted count multiset only; head_counts
        # skips materialising the key -> count mapping of current_head().
        counts_of = getattr(sketch, "head_counts", None)
        if counts_of is not None:
            head_counts = sorted(counts_of(self._theta), reverse=True)
        else:  # duck-typed estimator
            head_counts = sorted(self.current_head().values(), reverse=True)
        if not head_counts or total == 0:
            return ChoicesSolution(
                num_choices=2, use_w_choices=False, head_cardinality=0
            )
        head = [count / total for count in head_counts]
        tail_mass = max(0.0, 1.0 - sum(head))
        return find_optimal_choices(
            head, tail_mass, self.num_workers, self._epsilon
        )

    def _maybe_recompute(self) -> None:
        # Scanning the sketch is O(capacity); doing it for every hot-key
        # message would dominate routing, so throttle the check itself.
        # (_state is read directly: this runs per head message and the
        # messages_routed property call is measurable at that rate.)
        routed = self._state.messages_routed
        if (
            not self._never_solved
            and routed - self._messages_at_last_check < self._check_interval
        ):
            return
        self._maybe_recompute_at(routed)

    def _maybe_recompute_at(self, routed: int) -> None:
        """Run one (unthrottled) solver check as of message count ``routed``.

        Callers guarantee eligibility: either the solver has never run or at
        least ``check_interval`` messages passed since the last check.  The
        batched driver calls this directly at chunk-internal checkpoints
        with the sketch parked at exactly the triggering message, so the
        signature read here is the one the scalar path would have seen.

        The signature itself comes from ``sketch.head_signature`` — the
        (cardinality, hottest count) pair — rather than materialising the
        full ``current_head()`` mapping just to take its len and max.
        """
        self._messages_at_last_check = routed
        sketch = self._sketch
        signature_of = getattr(sketch, "head_signature", None)
        if signature_of is not None:
            cardinality, hottest_count = signature_of(self._theta)
        else:  # duck-typed estimator: derive the pair from the full head
            head = sketch.heavy_hitters(self._theta)
            cardinality = len(head)
            hottest_count = max(head.values()) if head else 0
        total = max(1, sketch.total)
        hottest = hottest_count / total if cardinality else 0.0
        signature = (cardinality, hottest)
        stale_by_count = (
            routed - self._messages_at_last_solve >= self._recompute_interval
        )
        head_changed = (
            signature[0] != self._head_signature[0]
            or abs(signature[1] - self._head_signature[1])
            > 0.1 * max(self._head_signature[1], 1e-12)
        )
        if self._never_solved or stale_by_count or head_changed:
            self._solution = self._find_optimal_choices()
            self._messages_at_last_solve = routed
            self._head_signature = signature
            self._never_solved = False

    # ------------------------------------------------------------------ #
    # head path
    # ------------------------------------------------------------------ #
    def _select_head(self, key: Key) -> RoutingDecision:
        self._maybe_recompute()
        if self._solution.use_w_choices:
            worker = self._least_loaded_overall()
            return RoutingDecision(key=key, worker=worker, is_head=True)
        num_choices = max(2, self._solution.num_choices)
        candidates = self._head_candidates(key, num_choices)
        worker = self._least_loaded(candidates)
        return RoutingDecision(
            key=key, worker=worker, candidates=candidates, is_head=True
        )

    def _select_head_worker(self, key: Key) -> WorkerId:
        self._maybe_recompute()
        return self._select_head_worker_solved(key)

    def _select_head_worker_id(self, kid: int) -> WorkerId:
        self._maybe_recompute()
        return self._select_head_worker_solved_id(kid)

    def _select_head_worker_solved(self, key: Key) -> WorkerId:
        # Same logic as _select_head without the RoutingDecision or the
        # solver throttle: selection against the *current* solution.  The
        # batched driver calls this directly after running the checkpoint
        # itself; candidate tuples for hot keys come from the per-head-key
        # cache, so the per-message cost is a dict hit plus the load scan.
        loads = self._state.loads
        if self._solution.use_w_choices:
            return loads.index(min(loads))
        candidates = self._cached_head_candidates(
            key, max(2, self._solution.num_choices)
        )
        best = candidates[0]
        best_load = loads[best]
        for candidate in candidates[1:]:
            load = loads[candidate]
            if load < best_load:
                best = candidate
                best_load = load
        return best

    def _select_head_worker_solved_id(self, kid: int) -> WorkerId:
        # Id-addressed twin of _select_head_worker_solved: candidates come
        # from the id-keyed cache (backed by the per-id table), selection is
        # identical.
        loads = self._state.loads
        if self._solution.use_w_choices:
            return loads.index(min(loads))
        candidates = self._cached_head_candidates_id(
            kid, max(2, self._solution.num_choices)
        )
        best = candidates[0]
        best_load = loads[best]
        for candidate in candidates[1:]:
            load = loads[candidate]
            if load < best_load:
                best = candidate
                best_load = load
        return best

    def _head_selection(self) -> tuple[str, int]:
        solution = self._solution
        if solution.use_w_choices:
            return ("all", 0)
        return ("d", max(2, solution.num_choices))

    def _route_batch_impl(
        self,
        keys: Sequence[Key],
        head_flags: list[bool] | None,
        id_mode: bool,
    ) -> list[WorkerId]:
        """Batched D-Choices: classified runs split at solver checkpoints.

        Serves both representations — ``keys`` are interned ids when
        ``id_mode`` is set (``route_batch_columnar`` binds the dictionary
        before delegating here); the head/tail split, the checkpoint
        arithmetic and the sketch feed are representation-agnostic.

        The head path reads the sketch and the message counter through the
        solver throttle, so the chunk cannot simply be classified in one
        pre-feeding pass — a mid-chunk check would observe keys from its own
        future.  But checkpoint positions are *predictable*: a check can
        only fire at a head message once ``check_interval`` messages have
        passed since the last check (or while the solver has never run).
        The driver therefore alternates between

        * bulk runs up to the next possible checkpoint — classified with one
          sketch pass and routed with the classified pipeline under the
          frozen solution, exactly as the scalar path would have done since
          every head message in the run is throttle-ineligible; and
        * a stop-at-head scan from the checkpoint on: the sketch feed halts
          right after the first head-classified message, the check runs with
          the sketch parked there (byte-identical signature and solve), and
          that message is then routed under the refreshed solution.

        The message counter only needs to be *read* at checkpoints, so it is
        reconstructed arithmetically instead of stored per message.
        """
        total_messages = len(keys)
        if total_messages == 0:
            return []
        state = self._state
        routed_before = state.messages_routed
        check_interval = self._check_interval
        out: list[WorkerId] = []
        flags_out: list[bool] | None = [] if head_flags is not None else None
        position = 0
        while position < total_messages:
            if self._never_solved:
                checkpoint = position
            else:
                checkpoint = self._messages_at_last_check + check_interval - routed_before
                if checkpoint < position:
                    checkpoint = position
            if checkpoint >= total_messages:
                # No checkpoint can fire in the remainder: one bulk run.
                block = keys[position:]
                tail_keys: list[Key] = []
                runs = self._classify_runs(block, tail_keys)
                self._route_runs(block, runs, tail_keys, out, id_mode)
                if flags_out is not None:
                    flags_out.extend(runs_to_flags(runs))
                break
            if checkpoint > position:
                # Throttle-ineligible prefix: bulk run under the frozen
                # solution.
                block = keys[position:checkpoint]
                tail_keys = []
                runs = self._classify_runs(block, tail_keys)
                self._route_runs(block, runs, tail_keys, out, id_mode)
                if flags_out is not None:
                    flags_out.extend(runs_to_flags(runs))
                position = checkpoint
            # From here every head message fires the check: scan for it with
            # the sketch feed stopping right after the triggering message.
            scan = keys[position:]
            tail_prefix: list[Key] = []
            flags = self._classify_batch(scan, stop_at_head=True, tail_out=tail_prefix)
            fed = len(flags)
            if flags and flags[-1]:
                self._route_tail_span(tail_prefix, out, id_mode)
                head_position = position + fed - 1
                self._maybe_recompute_at(routed_before + head_position)
                if id_mode:
                    worker = self._select_head_worker_solved_id(keys[head_position])
                else:
                    worker = self._select_head_worker_solved(keys[head_position])
                state.loads[worker] += 1
                out.append(worker)
                position = head_position + 1
            else:
                # No head key in the rest of the chunk: all tail.
                self._route_tail_span(tail_prefix, out, id_mode)
                position += fed
            if flags_out is not None:
                flags_out.extend(flags)
        state.messages_routed = routed_before + total_messages
        if head_flags is not None:
            head_flags.extend(flags_out)
        return out

    def reset(self) -> None:
        super().reset()
        self._solution = ChoicesSolution(
            num_choices=2, use_w_choices=False, head_cardinality=0
        )
        self._messages_at_last_solve = 0
        self._messages_at_last_check = 0
        self._never_solved = True
        self._head_signature = (0, 0.0)

    def _rescale_structures(self, old_num_workers: int, new_num_workers: int) -> None:
        super()._rescale_structures(old_num_workers, new_num_workers)
        # The cached solution was solved for the old n (and possibly the old
        # defaulted theta); force a fresh solve at the next head message.
        self._never_solved = True

    def _export_structures(self, state: dict) -> None:
        super()._export_structures(state)
        # ChoicesSolution is frozen, the signature a plain tuple: sharing
        # them with the adopter is safe.
        state["d_choices"] = {
            "solution": self._solution,
            "messages_at_last_solve": self._messages_at_last_solve,
            "messages_at_last_check": self._messages_at_last_check,
            "never_solved": self._never_solved,
            "head_signature": self._head_signature,
        }

    def _adopt_structures(self, state) -> None:
        super()._adopt_structures(state)
        solver = state.get("d_choices")
        if solver is not None:
            self._solution = solver["solution"]
            self._messages_at_last_solve = solver["messages_at_last_solve"]
            self._messages_at_last_check = solver["messages_at_last_check"]
            self._never_solved = solver["never_solved"]
            self._head_signature = solver["head_signature"]
        else:
            # Donor had no solver: solve at the first head message, with the
            # throttle counters anchored to the adopted message count.
            self._never_solved = True
            self._messages_at_last_solve = self._state.messages_routed
            self._messages_at_last_check = self._state.messages_routed

    def _head_key_candidates(self, key: Key) -> tuple[WorkerId, ...]:
        if self._solution.use_w_choices:
            return tuple(range(self.num_workers))
        return self._head_candidates(key, max(2, self._solution.num_choices))
