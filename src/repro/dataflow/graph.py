"""Topology declaration: vertices, edges and validation.

A :class:`Topology` is a DAG whose vertices are operator groups (a factory
plus a parallelism) and whose edges carry the grouping scheme used to
partition the stream flowing between two groups.  The builder validates the
graph shape (unknown vertices, duplicate names, cycles) before the runtime
ever instantiates an operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ConfigurationError
from repro.operators.base import Operator
from repro.partitioning.registry import canonical_name


@dataclass(frozen=True, slots=True)
class Vertex:
    """One operator group.

    Attributes
    ----------
    name:
        Unique vertex name.
    factory:
        Callable ``factory(instance_id) -> Operator`` building one parallel
        instance.
    parallelism:
        Number of instances of this operator.
    """

    name: str
    factory: Callable[[int], Operator]
    parallelism: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("vertex name must not be empty")
        if self.parallelism < 1:
            raise ConfigurationError(
                f"parallelism of {self.name!r} must be >= 1, got {self.parallelism}"
            )


@dataclass(frozen=True, slots=True)
class Edge:
    """A partitioned stream between two vertices.

    Attributes
    ----------
    source, target:
        Names of the upstream and downstream vertices.
    scheme:
        Grouping scheme name (canonicalised through the partitioner registry).
    scheme_options:
        Extra keyword arguments for the partitioner (theta, epsilon, ...).
    """

    source: str
    target: str
    scheme: str = "SG"
    scheme_options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # canonical_name raises ConfigurationError for unknown schemes
        object.__setattr__(self, "scheme", canonical_name(self.scheme))


class Topology:
    """A validated DAG of operator groups.

    Examples
    --------
    >>> from repro.operators.aggregations import CountAggregator
    >>> topology = Topology("counts")
    >>> topology.add_vertex("counter", CountAggregator, parallelism=4)
    >>> topology.set_source("counter", scheme="D-C")
    >>> topology.vertex("counter").parallelism
    4
    """

    #: Name of the implicit vertex representing the external input stream.
    SOURCE = "__source__"

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("topology name must not be empty")
        self._name = name
        self._vertices: dict[str, Vertex] = {}
        self._edges: list[Edge] = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def vertices(self) -> dict[str, Vertex]:
        return dict(self._vertices)

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(
        self,
        name: str,
        factory: Callable[[int], Operator],
        parallelism: int = 1,
    ) -> "Topology":
        """Add an operator group; returns self for chaining."""
        if name in self._vertices or name == self.SOURCE:
            raise ConfigurationError(f"vertex {name!r} already defined")
        self._vertices[name] = Vertex(name=name, factory=factory, parallelism=parallelism)
        return self

    def add_edge(
        self,
        source: str,
        target: str,
        scheme: str = "SG",
        **scheme_options: Any,
    ) -> "Topology":
        """Connect two vertices with a partitioned stream."""
        for endpoint in (source, target):
            if endpoint != self.SOURCE and endpoint not in self._vertices:
                raise ConfigurationError(f"unknown vertex {endpoint!r}")
        if target == self.SOURCE:
            raise ConfigurationError("the external input cannot be a target")
        edge = Edge(source=source, target=target, scheme=scheme,
                    scheme_options=dict(scheme_options))
        self._edges.append(edge)
        return self

    def set_source(self, target: str, scheme: str = "SG", **scheme_options: Any) -> "Topology":
        """Declare which vertex consumes the external input stream."""
        return self.add_edge(self.SOURCE, target, scheme=scheme, **scheme_options)

    # ------------------------------------------------------------------ #
    # queries / validation
    # ------------------------------------------------------------------ #
    def vertex(self, name: str) -> Vertex:
        if name not in self._vertices:
            raise ConfigurationError(f"unknown vertex {name!r}")
        return self._vertices[name]

    def outgoing(self, source: str) -> list[Edge]:
        return [edge for edge in self._edges if edge.source == source]

    def incoming(self, target: str) -> list[Edge]:
        return [edge for edge in self._edges if edge.target == target]

    def source_edges(self) -> list[Edge]:
        """Edges fed by the external input stream."""
        return self.outgoing(self.SOURCE)

    def validate(self) -> None:
        """Check the topology is a connected, acyclic, runnable graph."""
        if not self._vertices:
            raise ConfigurationError("topology has no vertices")
        if not self.source_edges():
            raise ConfigurationError(
                "topology has no source edge; call set_source(...)"
            )
        self._check_acyclic()
        reachable = self._reachable_from_source()
        unreachable = set(self._vertices) - reachable
        if unreachable:
            raise ConfigurationError(
                f"vertices unreachable from the source: {sorted(unreachable)}"
            )

    def topological_order(self) -> list[str]:
        """Vertex names in a topological order of the DAG."""
        self._check_acyclic()
        order: list[str] = []
        visited: set[str] = set()

        def visit(name: str) -> None:
            if name in visited or name == self.SOURCE:
                return
            visited.add(name)
            for edge in self.incoming(name):
                visit(edge.source)
            order.append(name)

        for name in self._vertices:
            visit(name)
        return order

    def _check_acyclic(self) -> None:
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str) -> None:
            if name == self.SOURCE:
                return
            mark = state.get(name)
            if mark == 0:
                raise ConfigurationError(f"topology has a cycle through {name!r}")
            if mark == 1:
                return
            state[name] = 0
            for edge in self.outgoing(name):
                visit(edge.target)
            state[name] = 1

        for name in self._vertices:
            visit(name)

    def _reachable_from_source(self) -> set[str]:
        reachable: set[str] = set()
        frontier = [edge.target for edge in self.source_edges()]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(edge.target for edge in self.outgoing(name))
        return reachable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self._name!r}, vertices={len(self._vertices)}, "
            f"edges={len(self._edges)})"
        )
