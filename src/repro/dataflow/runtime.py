"""Execution of a topology over a workload.

The runtime instantiates every vertex's operator instances, builds one
partitioner *per (edge, upstream instance)* — so each sender routes with its
own local load vector, as in the paper — and pushes every input message
through the DAG depth-first.  It collects per-vertex metrics (imbalance,
per-instance loads, state sizes) that mirror what the simulation engine
reports for a single edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dataflow.graph import Edge, Topology, Vertex
from repro.exceptions import ConfigurationError
from repro.operators.base import Operator
from repro.partitioning.base import Partitioner
from repro.partitioning.registry import create_partitioner
from repro.types import Key, Message


@dataclass(slots=True)
class VertexMetrics:
    """Per-vertex load statistics after a run."""

    name: str
    parallelism: int
    messages: int
    instance_loads: list[int] = field(default_factory=list)
    state_sizes: list[int] = field(default_factory=list)

    @property
    def imbalance(self) -> float:
        """``I(m)`` over this vertex's instances (0 when it saw no traffic)."""
        if self.messages == 0:
            return 0.0
        normalized = [load / self.messages for load in self.instance_loads]
        return max(0.0, max(normalized) - sum(normalized) / self.parallelism)

    @property
    def total_state_entries(self) -> int:
        return sum(self.state_sizes)


@dataclass(slots=True)
class TopologyResult:
    """Everything :func:`run_topology` reports."""

    topology_name: str
    messages_ingested: int
    metrics: dict[str, VertexMetrics] = field(default_factory=dict)
    #: The live operator instances, per vertex, so callers can reconcile
    #: stateful results after the run.
    instances: dict[str, list[Operator]] = field(default_factory=dict)

    def vertex_metrics(self, name: str) -> VertexMetrics:
        if name not in self.metrics:
            raise ConfigurationError(f"no metrics for vertex {name!r}")
        return self.metrics[name]


class _EdgeRouter:
    """Per-edge routing state: one partitioner per upstream instance."""

    def __init__(self, edge: Edge, upstream_parallelism: int,
                 downstream_parallelism: int, seed: int) -> None:
        self.edge = edge
        self._partitioners: list[Partitioner] = []
        for sender in range(upstream_parallelism):
            sender_seed = seed + sender if edge.scheme == "SG" else seed
            self._partitioners.append(
                create_partitioner(
                    edge.scheme,
                    num_workers=downstream_parallelism,
                    seed=sender_seed,
                    **edge.scheme_options,
                )
            )

    def route(self, sender: int, key: Key) -> int:
        return self._partitioners[sender].route(key)


class TopologyRuntime:
    """Instantiates and runs a validated topology."""

    def __init__(self, topology: Topology, seed: int = 0,
                 num_external_sources: int = 1) -> None:
        topology.validate()
        if num_external_sources < 1:
            raise ConfigurationError(
                f"num_external_sources must be >= 1, got {num_external_sources}"
            )
        self._topology = topology
        self._seed = seed
        self._num_external_sources = num_external_sources
        self._instances: dict[str, list[Operator]] = {
            vertex.name: [vertex.factory(i) for i in range(vertex.parallelism)]
            for vertex in topology.vertices.values()
        }
        self._routers: dict[int, _EdgeRouter] = {}
        for index, edge in enumerate(topology.edges):
            upstream = (
                num_external_sources
                if edge.source == Topology.SOURCE
                else topology.vertex(edge.source).parallelism
            )
            downstream = topology.vertex(edge.target).parallelism
            self._routers[index] = _EdgeRouter(
                edge, upstream, downstream, seed + index * 1000
            )
        self._ingested = 0

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, workload: Iterable[Key | Message]) -> TopologyResult:
        """Push every message of ``workload`` through the topology."""
        for raw in workload:
            message = raw if isinstance(raw, Message) else Message(
                timestamp=float(self._ingested), key=raw
            )
            external_source = self._ingested % self._num_external_sources
            self._ingested += 1
            for index, edge in enumerate(self._topology.edges):
                if edge.source == Topology.SOURCE:
                    self._deliver(index, edge, external_source, message)
        if self._ingested == 0:
            raise ConfigurationError("cannot run a topology on an empty workload")
        return self._build_result()

    def _deliver(self, edge_index: int, edge: Edge, sender: int,
                 message: Message) -> None:
        """Route ``message`` over ``edge`` and process it downstream."""
        router = self._routers[edge_index]
        instance_index = router.route(sender, message.key)
        instance = self._instances[edge.target][instance_index]
        outputs = instance.execute(message)
        if not outputs:
            return
        for downstream_index, downstream_edge in enumerate(self._topology.edges):
            if downstream_edge.source != edge.target:
                continue
            for output in outputs:
                self._deliver(downstream_index, downstream_edge,
                              instance_index, output)

    def _build_result(self) -> TopologyResult:
        result = TopologyResult(
            topology_name=self._topology.name,
            messages_ingested=self._ingested,
            instances=self._instances,
        )
        for name, instances in self._instances.items():
            loads = [instance.processed for instance in instances]
            result.metrics[name] = VertexMetrics(
                name=name,
                parallelism=len(instances),
                messages=sum(loads),
                instance_loads=loads,
                state_sizes=[instance.state_size() for instance in instances],
            )
        return result


def run_topology(
    topology: Topology,
    workload: Iterable[Key | Message],
    seed: int = 0,
    num_external_sources: int = 1,
) -> TopologyResult:
    """Validate, instantiate and run ``topology`` over ``workload``.

    Examples
    --------
    >>> from repro.operators.aggregations import CountAggregator
    >>> topology = Topology("wordcount")
    >>> _ = topology.add_vertex("count", CountAggregator, parallelism=4)
    >>> _ = topology.set_source("count", scheme="PKG")
    >>> result = run_topology(topology, ["a", "b", "a", "c"] * 25)
    >>> result.vertex_metrics("count").messages
    100
    """
    runtime = TopologyRuntime(
        topology, seed=seed, num_external_sources=num_external_sources
    )
    return runtime.run(workload)
