"""Execution of a topology over a workload.

The runtime instantiates every vertex's operator instances and builds one
partitioner *per (edge, upstream instance)* — so each sender routes with its
own local load vector, as in the paper.  Two execution modes share that
machinery:

* **scalar** (``batch_size=1``): every input message is pushed through the
  DAG depth-first, routed and processed one at a time — the reference
  semantics;
* **batched** (``batch_size>1``, the default): the stream is consumed in
  micro-batches and the DAG executes *stage by stage* — every edge routes
  its whole sub-batch through the per-sender partitioner's ``route_batch``
  (vectorized hashing) and every operator instance processes its share via
  ``execute_batch`` (bulk folds).  Deliveries carry their depth-first order,
  so each partitioner and each operator instance observes exactly the
  sub-stream it would under scalar execution: results are byte-identical
  for every batch size (property-pinned), only the throughput changes;
* **columnar** (``columnar=True``): batched execution whose micro-batches
  are interned key-id arrays (:class:`~repro.workloads.columnar.ColumnarBatch`)
  — source edges route ids through ``route_batch_columnar`` and terminal
  stateful vertices fold their shares in id space via ``execute_batch_ids``,
  so string keys are hashed exactly once, at interning.  Still
  byte-identical.

The runtime collects per-vertex metrics (imbalance, per-instance loads,
state sizes) that mirror what the simulation engine reports for a single
edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import merge as _heap_merge
from itertools import islice
from operator import attrgetter, itemgetter
from typing import Iterable, Iterator, Sequence

from repro.dataflow.graph import Edge, Topology, Vertex
from repro.exceptions import ConfigurationError
from repro.execution import ExecutionMode, ModeLike, resolve_mode
from repro.operators.base import Operator
from repro.partitioning.base import Partitioner
from repro.partitioning.registry import create_partitioner
from repro.types import Key, Message

#: Default number of input messages pulled per micro-batch.
DEFAULT_BATCH_SIZE = 1024

_MESSAGE_KEY = attrgetter("key")


@dataclass(slots=True)
class VertexMetrics:
    """Per-vertex load statistics after a run."""

    name: str
    parallelism: int
    messages: int
    instance_loads: list[int] = field(default_factory=list)
    state_sizes: list[int] = field(default_factory=list)

    @property
    def imbalance(self) -> float:
        """``I(m)`` over this vertex's instances (0 when it saw no traffic)."""
        if self.messages == 0:
            return 0.0
        normalized = [load / self.messages for load in self.instance_loads]
        return max(0.0, max(normalized) - sum(normalized) / self.parallelism)

    @property
    def total_state_entries(self) -> int:
        return sum(self.state_sizes)


@dataclass(slots=True)
class TopologyResult:
    """Everything :func:`run_topology` reports."""

    topology_name: str
    messages_ingested: int
    metrics: dict[str, VertexMetrics] = field(default_factory=dict)
    #: The live operator instances, per vertex, so callers can reconcile
    #: stateful results after the run.
    instances: dict[str, list[Operator]] = field(default_factory=dict)
    #: Scheme switches applied by adaptive (``AD``) edge partitioners during
    #: the run — one dict per switch, annotated with the edge and the sender
    #: instance, ordered by stream position.  Empty for static schemes.
    switch_log: list[dict] = field(default_factory=list)

    def vertex_metrics(self, name: str) -> VertexMetrics:
        if name not in self.metrics:
            raise ConfigurationError(f"no metrics for vertex {name!r}")
        return self.metrics[name]


class _EdgeRouter:
    """Per-edge routing state: one partitioner per upstream instance."""

    def __init__(self, edge: Edge, upstream_parallelism: int,
                 downstream_parallelism: int, seed: int) -> None:
        self.edge = edge
        self._partitioners: list[Partitioner] = []
        for sender in range(upstream_parallelism):
            sender_seed = seed + sender if edge.scheme == "SG" else seed
            self._partitioners.append(
                create_partitioner(
                    edge.scheme,
                    num_workers=downstream_parallelism,
                    seed=sender_seed,
                    **edge.scheme_options,
                )
            )

    def route(self, sender: int, key: Key) -> int:
        return self._partitioners[sender].route(key)

    def route_batch(self, sender: int, keys: list[Key]) -> list[int]:
        return self._partitioners[sender].route_batch(keys)

    def route_batch_columnar(self, sender: int, batch) -> list[int]:
        return self._partitioners[sender].route_batch_columnar(batch)

    def switch_events(self) -> list[dict]:
        """Scheme switches of this edge's partitioners (adaptive only)."""
        rows: list[dict] = []
        for sender, partitioner in enumerate(self._partitioners):
            events = getattr(partitioner, "switch_events", None)
            if not callable(events):
                continue
            for record in events():
                row = record.to_dict()
                row["edge"] = f"{self.edge.source}->{self.edge.target}"
                row["sender"] = sender
                rows.append(row)
        return rows


class TopologyRuntime:
    """Instantiates and runs a validated topology."""

    def __init__(self, topology: Topology, seed: int = 0,
                 num_external_sources: int = 1,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 columnar: bool = False) -> None:
        topology.validate()
        if num_external_sources < 1:
            raise ConfigurationError(
                f"num_external_sources must be >= 1, got {num_external_sources}"
            )
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if columnar and batch_size < 2:
            raise ConfigurationError(
                "columnar execution requires batch_size > 1"
            )
        self._topology = topology
        self._seed = seed
        self._num_external_sources = num_external_sources
        self._batch_size = batch_size
        self._columnar = columnar
        self._instances: dict[str, list[Operator]] = {
            vertex.name: [vertex.factory(i) for i in range(vertex.parallelism)]
            for vertex in topology.vertices.values()
        }
        self._edges = topology.edges
        self._routers: dict[int, _EdgeRouter] = {}
        for index, edge in enumerate(self._edges):
            upstream = (
                num_external_sources
                if edge.source == Topology.SOURCE
                else topology.vertex(edge.source).parallelism
            )
            downstream = topology.vertex(edge.target).parallelism
            self._routers[index] = _EdgeRouter(
                edge, upstream, downstream, seed + index * 1000
            )
        # Stage plan for batched execution: vertices in topological order,
        # with each vertex's incoming and outgoing edge indices.
        self._stage_order = topology.topological_order()
        self._incoming: dict[str, list[int]] = {name: [] for name in self._stage_order}
        self._outgoing: dict[str, list[int]] = {name: [] for name in self._stage_order}
        self._source_edge_indices: list[int] = []
        for index, edge in enumerate(self._edges):
            self._incoming[edge.target].append(index)
            if edge.source == Topology.SOURCE:
                self._source_edge_indices.append(index)
            else:
                self._outgoing[edge.source].append(index)
        # Merge-free topologies (every vertex fed by exactly one edge — the
        # overwhelmingly common shape) take a leaner batched path that skips
        # the depth-first order keys entirely: each edge's delivery list is
        # in arrival order by construction.
        self._merge_free = all(
            len(edges) == 1 for edges in self._incoming.values()
        )
        self._ingested = 0

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, workload: Iterable[Key | Message]) -> TopologyResult:
        """Push every message of ``workload`` through the topology."""
        if self._columnar:
            self._run_columnar(workload)
        elif self._batch_size == 1:
            self._run_scalar(workload)
        else:
            self._run_batched(workload)
        if self._ingested == 0:
            raise ConfigurationError("cannot run a topology on an empty workload")
        return self._build_result()

    # ------------------------------------------------------------------ #
    # scalar execution (depth-first, one message at a time)
    # ------------------------------------------------------------------ #
    def _run_scalar(self, workload: Iterable[Key | Message]) -> None:
        for raw in workload:
            message = raw if isinstance(raw, Message) else Message(
                timestamp=float(self._ingested), key=raw
            )
            external_source = self._ingested % self._num_external_sources
            self._ingested += 1
            for index in self._source_edge_indices:
                self._deliver(index, self._edges[index], external_source, message)

    def _deliver(self, edge_index: int, edge: Edge, sender: int,
                 message: Message) -> None:
        """Route ``message`` over ``edge`` and process it downstream."""
        router = self._routers[edge_index]
        instance_index = router.route(sender, message.key)
        instance = self._instances[edge.target][instance_index]
        outputs = instance.execute(message)
        if not outputs:
            return
        for downstream_index in self._outgoing[edge.target]:
            downstream_edge = self._edges[downstream_index]
            for output in outputs:
                self._deliver(downstream_index, downstream_edge,
                              instance_index, output)

    # ------------------------------------------------------------------ #
    # batched execution (stage by stage over micro-batches)
    # ------------------------------------------------------------------ #
    def _run_batched(self, workload: Iterable[Key | Message]) -> None:
        execute = (
            self._execute_micro_batch_merge_free
            if self._merge_free
            else self._execute_micro_batch
        )
        iterator: Iterator[Key | Message] = iter(workload)
        while True:
            chunk = list(islice(iterator, self._batch_size))
            if not chunk:
                return
            execute(chunk)

    def _ingest_chunk(self, chunk: list[Key | Message]) -> list[Message]:
        """Convert one input chunk into a message list (senders implicit)."""
        base = self._ingested
        self._ingested += len(chunk)
        return [
            raw if isinstance(raw, Message) else Message(
                timestamp=float(base + offset), key=raw
            )
            for offset, raw in enumerate(chunk)
        ]

    def _run_columnar(self, workload: Iterable[Key]) -> None:
        """Columnar batched execution: interned key-id arrays at the source.

        The workload is consumed through ``iter_batches_columnar`` (native
        when the workload provides it, the generic chunker otherwise), so
        string keys are hashed exactly once, at interning.  Source edges
        route id arrays through ``route_batch_columnar`` and terminal
        stateful vertices fold their shares in id space via
        ``execute_batch_ids``; any other downstream consumption decodes the
        batch once and continues on the ordinary message machinery.
        Results are byte-identical to the scalar and batched paths.

        Columnar mode treats the workload as a *key* stream (pre-built
        :class:`Message` inputs belong to the message paths).  Topologies
        with merge vertices fall back to the order-keyed general path,
        decoding each batch up front.
        """
        if hasattr(workload, "iter_batches_columnar"):
            batches = workload.iter_batches_columnar(self._batch_size)
        else:
            from repro.workloads.columnar import iter_batches_columnar

            batches = iter_batches_columnar(workload, self._batch_size)
        for batch in batches:
            if not len(batch):
                continue
            if self._merge_free:
                self._execute_micro_batch_columnar(batch)
            else:
                self._execute_micro_batch(batch.keys())

    def _execute_micro_batch_columnar(self, batch) -> None:
        """One columnar micro-batch through the merge-free stage loop."""
        base = self._ingested
        self._ingested += len(batch)
        pending: list[tuple[object, object] | None] = [None] * len(self._edges)
        for edge_index in self._source_edge_indices:
            pending[edge_index] = ("columnar", batch)
        self._drain_stages(pending, base)

    def _execute_micro_batch_merge_free(self, chunk: list[Key | Message]) -> None:
        """Stage-wise micro-batch execution for merge-free topologies.

        With a single incoming edge per vertex there is nothing to
        interleave, so deliveries travel in arrival order by construction —
        no per-delivery order keys, no merge.  Routing still goes per
        sender through ``route_batch`` and processing per instance through
        ``execute_batch``, exactly as the general path, so every
        partitioner and operator sees its scalar sub-stream.

        Sub-batch senders are tracked by payload shape rather than one int
        per delivery: the external round-robin assignment is recovered with
        strided slices (C-speed slicing instead of a Python grouping loop)
        and internal edges reuse the upstream worker vector.
        """
        base = self._ingested
        messages = self._ingest_chunk(chunk)
        # payload per edge: (senders, messages) where senders is None for
        # the round-robin external stream, an int when every delivery has
        # the same sender, or a per-delivery worker-id list.
        pending: list[tuple[object, object] | None] = (
            [None] * len(self._edges)
        )
        for edge_index in self._source_edge_indices:
            pending[edge_index] = (None, messages)
        self._drain_stages(pending, base)

    def _drain_stages(
        self, pending: list[tuple[object, object] | None], base: int
    ) -> None:
        """Run the merge-free stage loop over the queued edge payloads.

        A payload is ``(senders, data)``: ``senders`` is ``None`` for the
        round-robin external message stream, ``"columnar"`` for the external
        stream as a :class:`ColumnarBatch`, an int when every delivery has
        the same sender, or a per-delivery sender list.
        """
        num_sources = self._num_external_sources
        for vertex_name in self._stage_order:
            edge_index = self._incoming[vertex_name][0]
            payload = pending[edge_index]
            if payload is None:
                continue
            pending[edge_index] = None
            senders, messages = payload
            count = len(messages)
            if not count:
                continue
            router = self._routers[edge_index]
            instances = self._instances[vertex_name]
            outgoing = self._outgoing[vertex_name]
            # --- route: one route_batch call per distinct sender --------- #
            if senders == "columnar":
                # The external stream as an id array: per-sender shares are
                # strided views, routed without any decode.
                batch = messages
                if num_sources == 1:
                    workers = router.route_batch_columnar(0, batch)
                else:
                    workers = [0] * count
                    for sender in range(num_sources):
                        offset = (sender - base) % num_sources
                        sub = batch.strided(offset, num_sources)
                        if len(sub):
                            workers[offset::num_sources] = (
                                router.route_batch_columnar(sender, sub)
                            )
                if not outgoing and all(
                    hasattr(instance, "execute_batch_ids")
                    for instance in instances
                ):
                    # Terminal stateful vertex: fold shares in id space —
                    # no Message objects, one decode per distinct key.
                    self._fold_terminal_ids(instances, workers, batch)
                    continue
                # Anything else consumes messages: decode the batch once.
                messages = [
                    Message(timestamp=float(base + offset), key=key)
                    for offset, key in enumerate(batch.keys())
                ]
            elif senders is None:
                # External round-robin: sender of messages[i] is
                # (base + i) % num_sources, so each sender's sub-stream is a
                # strided slice and the routed workers scatter back with a
                # C-speed slice assignment.
                if num_sources == 1:
                    workers = router.route_batch(
                        0, list(map(_MESSAGE_KEY, messages))
                    )
                else:
                    workers: list[int] = [0] * count
                    for sender in range(num_sources):
                        offset = (sender - base) % num_sources
                        share = messages[offset::num_sources]
                        if share:
                            workers[offset::num_sources] = router.route_batch(
                                sender, list(map(_MESSAGE_KEY, share))
                            )
            elif type(senders) is int:
                workers = router.route_batch(
                    senders, list(map(_MESSAGE_KEY, messages))
                )
            else:
                by_sender: dict[int, list[int]] = {}
                for position, sender in enumerate(senders):
                    group = by_sender.get(sender)
                    if group is None:
                        by_sender[sender] = [position]
                    else:
                        group.append(position)
                workers = [0] * count
                for sender, positions in by_sender.items():
                    routed = router.route_batch(
                        sender, [messages[position].key for position in positions]
                    )
                    for position, worker in zip(positions, routed):
                        workers[position] = worker
            # --- process: one execute_batch call per active instance ---- #
            parallelism = len(instances)
            if parallelism == 1:
                emitted_by_position = instances[0].execute_batch(messages)
            else:
                share_groups: list[list[Message] | None] = [None] * parallelism
                for worker, message in zip(workers, messages):
                    share = share_groups[worker]
                    if share is None:
                        share_groups[worker] = [message]
                    else:
                        share.append(message)
                if not outgoing:
                    # Terminal vertex: nothing consumes the outputs.
                    for worker, share in enumerate(share_groups):
                        if share is not None:
                            instances[worker].execute_batch(share)
                    continue
                # Each group's outputs come back in that group's input
                # order, so replaying the worker vector against per-group
                # iterators restores arrival order without position lists.
                emitted_iters = [
                    iter(instances[worker].execute_batch(share))
                    if share is not None
                    else None
                    for worker, share in enumerate(share_groups)
                ]
                emitted_by_position: list[Sequence[Message]] = [
                    next(emitted_iters[worker]) for worker in workers
                ]
            if not outgoing:
                continue
            # --- emit: flatten in arrival order, senders = producers ----- #
            downstream_senders: list[int] = []
            downstream_messages: list[Message] = []
            sender_append = downstream_senders.append
            message_append = downstream_messages.append
            for worker, emitted in zip(workers, emitted_by_position):
                if emitted:
                    for output in emitted:
                        sender_append(worker)
                        message_append(output)
            if not downstream_messages:
                continue
            first = downstream_senders[0]
            if downstream_senders[-1] == first and all(
                sender == first for sender in downstream_senders
            ):
                next_payload = (first, downstream_messages)
            else:
                next_payload = (downstream_senders, downstream_messages)
            # All outgoing edges see the same (read-only) delivery lists.
            for downstream_index in outgoing:
                pending[downstream_index] = next_payload

    @staticmethod
    def _fold_terminal_ids(instances, workers: list[int], batch) -> None:
        """Fold a terminal columnar share per instance, in id space."""
        ids = batch.ids.tolist()
        dictionary = batch.dictionary
        if len(instances) == 1:
            instances[0].execute_batch_ids(ids, dictionary)
            return
        share_groups: list[list[int] | None] = [None] * len(instances)
        for worker, kid in zip(workers, ids):
            share = share_groups[worker]
            if share is None:
                share_groups[worker] = [kid]
            else:
                share.append(kid)
        for worker, share in enumerate(share_groups):
            if share is not None:
                instances[worker].execute_batch_ids(share, dictionary)

    def _execute_micro_batch(self, chunk: list[Key | Message]) -> None:
        """Run one micro-batch through the DAG, stage by stage.

        Every delivery carries its *depth-first order key* — the tuple of
        ``(edge index, output index)`` pairs along its derivation path,
        prefixed by the input message's position.  Sorting deliveries by
        that key reconstructs exactly the order the scalar engine would
        process them in, which is what keeps each per-sender partitioner
        and each operator instance on the same sub-stream as scalar
        execution (and therefore every result bit-identical).
        """
        num_sources = self._num_external_sources
        # Unrouted deliveries per edge, each list kept sorted by order key:
        # (order_key, sender, message).
        pending: dict[int, list[tuple[tuple[int, ...], int, Message]]] = {
            index: [] for index in range(len(self._edges))
        }
        base = self._ingested
        batch: list[tuple[int, Message]] = []
        for offset, raw in enumerate(chunk):
            message = raw if isinstance(raw, Message) else Message(
                timestamp=float(base + offset), key=raw
            )
            batch.append(((base + offset) % num_sources, message))
        self._ingested += len(chunk)
        for edge_index in self._source_edge_indices:
            pending[edge_index] = [
                ((position, edge_index, 0), sender, message)
                for position, (sender, message) in enumerate(batch)
            ]

        for vertex_name in self._stage_order:
            arrivals = self._route_incoming(vertex_name, pending)
            if not arrivals:
                continue
            outputs = self._process_stage(vertex_name, arrivals)
            self._emit_downstream(vertex_name, arrivals, outputs, pending)

    def _route_incoming(
        self,
        vertex_name: str,
        pending: dict[int, list[tuple[tuple[int, ...], int, Message]]],
    ) -> list[tuple[tuple[int, ...], int, Message]]:
        """Route every delivery bound for ``vertex_name``.

        Returns ``(order_key, instance_index, message)`` triples sorted by
        order key.  Each incoming edge routes per sender through
        ``route_batch`` — the sender's deliveries are already in order, so
        its partitioner sees the same key sequence as under scalar routing.
        """
        routed_lists: list[list[tuple[tuple[int, ...], int, Message]]] = []
        for edge_index in self._incoming[vertex_name]:
            deliveries = pending[edge_index]
            if not deliveries:
                continue
            pending[edge_index] = []
            router = self._routers[edge_index]
            routed: list[tuple[tuple[int, ...], int, Message]] = [None] * len(deliveries)  # type: ignore[list-item]
            by_sender: dict[int, tuple[list[int], list[Key]]] = {}
            for position, (_, sender, message) in enumerate(deliveries):
                slot = by_sender.get(sender)
                if slot is None:
                    slot = by_sender[sender] = ([], [])
                slot[0].append(position)
                slot[1].append(message.key)
            for sender, (positions, keys) in by_sender.items():
                workers = router.route_batch(sender, keys)
                for position, worker in zip(positions, workers):
                    order_key, _, message = deliveries[position]
                    routed[position] = (order_key, worker, message)
            routed_lists.append(routed)
        if not routed_lists:
            return []
        if len(routed_lists) == 1:
            return routed_lists[0]
        # Multiple incoming edges: interleave back into depth-first order.
        return list(_heap_merge(*routed_lists, key=itemgetter(0)))

    def _process_stage(
        self,
        vertex_name: str,
        arrivals: list[tuple[tuple[int, ...], int, Message]],
    ) -> list[Sequence[Message]]:
        """Feed each instance its (in-order) share; outputs align to arrivals."""
        per_instance: dict[int, tuple[list[int], list[Message]]] = {}
        for position, (_, instance_index, message) in enumerate(arrivals):
            slot = per_instance.get(instance_index)
            if slot is None:
                slot = per_instance[instance_index] = ([], [])
            slot[0].append(position)
            slot[1].append(message)
        instances = self._instances[vertex_name]
        outputs: list[Sequence[Message]] = [()] * len(arrivals)
        for instance_index, (positions, messages) in per_instance.items():
            emitted = instances[instance_index].execute_batch(messages)
            for position, out in zip(positions, emitted):
                outputs[position] = out
        return outputs

    def _emit_downstream(
        self,
        vertex_name: str,
        arrivals: list[tuple[tuple[int, ...], int, Message]],
        outputs: list[Sequence[Message]],
        pending: dict[int, list[tuple[tuple[int, ...], int, Message]]],
    ) -> None:
        """Queue stage outputs on the outgoing edges, extending order keys.

        Arrivals are order-key-sorted and extensions append ``(edge, j)``
        suffixes, so each edge's pending list stays sorted by construction.
        """
        for edge_index in self._outgoing[vertex_name]:
            queue = pending[edge_index]
            append = queue.append
            for (order_key, instance_index, _), emitted in zip(arrivals, outputs):
                for output_index, output in enumerate(emitted):
                    append((
                        order_key + (edge_index, output_index),
                        instance_index,
                        output,
                    ))

    def _build_result(self) -> TopologyResult:
        switch_log: list[dict] = []
        for router in self._routers.values():
            switch_log.extend(router.switch_events())
        # Position first, then edge/sender: a deterministic stream order
        # that is identical across the scalar, batched and columnar paths
        # (per-sender positions are unique within an edge).
        switch_log.sort(key=lambda row: (row["position"], row["edge"], row["sender"]))
        result = TopologyResult(
            topology_name=self._topology.name,
            messages_ingested=self._ingested,
            instances=self._instances,
            switch_log=switch_log,
        )
        for name, instances in self._instances.items():
            loads = [instance.processed for instance in instances]
            result.metrics[name] = VertexMetrics(
                name=name,
                parallelism=len(instances),
                messages=sum(loads),
                instance_loads=loads,
                state_sizes=[instance.state_size() for instance in instances],
            )
        return result


def run_topology(
    topology: Topology,
    workload: Iterable[Key | Message],
    seed: int = 0,
    num_external_sources: int = 1,
    batch_size: int | None = None,
    columnar: bool | None = None,
    mode: ModeLike | None = None,
) -> TopologyResult:
    """Validate, instantiate and run ``topology`` over ``workload``.

    ``mode`` selects the execution backend
    (:class:`~repro.execution.ExecutionMode`): scalar runs the depth-first
    per-message path, batched pulls micro-batches of ``batch_size`` input
    messages, and columnar ingests the workload as interned key-id arrays —
    the source edges route id arrays and terminal stateful vertices fold
    their shares in id space (string keys are hashed once; columnar mode
    expects a key stream, not pre-built messages).  Results are
    byte-identical for every mode, only the throughput changes.  The
    default is the historical ``batched(1024)``; the legacy ``batch_size=``
    / ``columnar=`` keywords remain as deprecated aliases emitting a
    :class:`DeprecationWarning`.

    Examples
    --------
    >>> from repro.operators.aggregations import CountAggregator
    >>> topology = Topology("wordcount")
    >>> _ = topology.add_vertex("count", CountAggregator, parallelism=4)
    >>> _ = topology.set_source("count", scheme="PKG")
    >>> result = run_topology(topology, ["a", "b", "a", "c"] * 25)
    >>> result.vertex_metrics("count").messages
    100
    """
    resolved = resolve_mode(
        mode, batch_size, columnar,
        default=ExecutionMode.batched(DEFAULT_BATCH_SIZE), where="run_topology",
    )
    runtime = TopologyRuntime(
        topology,
        seed=seed,
        num_external_sources=num_external_sources,
        batch_size=resolved.batch_size,
        columnar=resolved.is_columnar,
    )
    return runtime.run(workload)
