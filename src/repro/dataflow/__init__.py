"""A minimal dataflow (DSPE) runtime.

The paper evaluates its groupings inside Apache Storm: a directed acyclic
graph of operators, each replicated into several parallel instances, with a
grouping scheme on every edge.  This subpackage provides the same substrate
in-process:

* :mod:`repro.dataflow.graph` — declare a topology: named vertices (operator
  factories + parallelism) connected by edges carrying a grouping scheme;
* :mod:`repro.dataflow.runtime` — run a topology over a workload, routing
  every message edge by edge with per-upstream-instance partitioners (so
  load estimation stays local to the sender, as in the paper), and collect
  per-vertex load, imbalance and state-size metrics.

The runtime is logical (no threads, no network): it exists so that end-to-end
applications — word count, trending topics — can be expressed exactly as they
would be on a real DSPE and still measure the balance effects the paper is
about.
"""

from repro.dataflow.graph import Edge, Topology, Vertex
from repro.dataflow.runtime import TopologyResult, VertexMetrics, run_topology

__all__ = [
    "Edge",
    "Topology",
    "TopologyResult",
    "Vertex",
    "VertexMetrics",
    "run_topology",
]
