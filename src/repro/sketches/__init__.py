"""Frequency-estimation sketches (heavy-hitter algorithms).

The paper's head/tail split relies on detecting heavy hitters online.  The
authors use the SpaceSaving algorithm (Metwally et al., ICDT 2005) and note
that it generalises to the distributed setting (Berinde et al., TODS 2010).

This subpackage implements:

* :class:`~repro.sketches.space_saving.SpaceSaving` — the paper's sketch,
  with the stream-summary bucket structure giving O(1) amortised updates;
* :class:`~repro.sketches.misra_gries.MisraGries` — the classic deterministic
  counter-based alternative;
* :class:`~repro.sketches.lossy_counting.LossyCounting` — Manku & Motwani's
  epsilon-deficient counting;
* :class:`~repro.sketches.count_min.CountMinSketch` — a linear sketch used as
  an ablation alternative;
* :func:`~repro.sketches.distributed.merge_summaries` and
  :class:`~repro.sketches.distributed.DistributedHeavyHitters` — mergeable
  summaries across sources, following the weighted-merge result of Berinde
  et al.

All estimators share the :class:`~repro.sketches.base.FrequencyEstimator`
interface, so the partitioners can swap them for ablation studies.
"""

from repro.sketches.base import FrequencyEstimate, FrequencyEstimator
from repro.sketches.count_min import CountMinSketch
from repro.sketches.distributed import DistributedHeavyHitters, merge_summaries
from repro.sketches.lossy_counting import LossyCounting
from repro.sketches.misra_gries import MisraGries
from repro.sketches.space_saving import SpaceSaving

__all__ = [
    "CountMinSketch",
    "DistributedHeavyHitters",
    "FrequencyEstimate",
    "FrequencyEstimator",
    "LossyCounting",
    "MisraGries",
    "SpaceSaving",
    "merge_summaries",
]
