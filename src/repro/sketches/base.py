"""Common interface for frequency estimators (heavy-hitter sketches).

The partitioners only need three operations from a sketch:

* ``add(key)`` — account for one occurrence of ``key``;
* ``estimate(key)`` — an (over- or under-) estimate of the key's count;
* ``heavy_hitters(threshold)`` — the keys whose *relative* frequency is
  estimated to be at least ``threshold``.

Keeping the interface abstract lets D-Choices/W-Choices run with SpaceSaving
(the paper's choice) or with any of the alternatives for ablation studies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.types import Key


@dataclass(frozen=True, slots=True)
class FrequencyEstimate:
    """An estimated count for a key, with the estimation error if known.

    ``count`` is the sketch's estimate; ``error`` is an upper bound on the
    overestimation, so the true count lies in ``[count - error, count]`` for
    counter-based sketches such as SpaceSaving.
    """

    key: Key
    count: int
    error: int = 0

    @property
    def guaranteed_count(self) -> int:
        """A lower bound on the true count of this key."""
        return max(0, self.count - self.error)


class FrequencyEstimator(abc.ABC):
    """Abstract streaming frequency estimator.

    Implementations must track the total number of observed items in
    :attr:`total` so relative frequencies can be computed without outside
    bookkeeping.
    """

    @property
    @abc.abstractmethod
    def total(self) -> int:
        """Total number of items observed so far."""

    @abc.abstractmethod
    def add(self, key: Key, count: int = 1) -> None:
        """Account for ``count`` occurrences of ``key``."""

    @abc.abstractmethod
    def estimate(self, key: Key) -> int:
        """Estimated count of ``key`` (0 for never-seen keys)."""

    @abc.abstractmethod
    def entries(self) -> Iterator[FrequencyEstimate]:
        """Iterate over all currently monitored keys."""

    def add_all(self, keys: Iterable[Key]) -> None:
        """Convenience: add each key of an iterable once.

        Implementations with a cheaper bulk path (SpaceSaving's run
        collapsing) override this; the result must equal element-wise
        :meth:`add` calls.  Concrete sketches also expose ``reset()`` to
        clear their counters in place — it is part of the informal protocol
        (used by the head/tail partitioners) rather than this ABC so that
        minimal third-party estimators remain valid.
        """
        for key in keys:
            self.add(key)

    def frequency(self, key: Key) -> float:
        """Estimated relative frequency of ``key`` in [0, 1]."""
        if self.total == 0:
            return 0.0
        return self.estimate(key) / self.total

    def heavy_hitters(self, threshold: float) -> dict[Key, int]:
        """Keys whose estimated relative frequency is at least ``threshold``.

        Returns a mapping from key to estimated count.  Sketches with
        one-sided error (SpaceSaving, MisraGries with correction, Lossy
        Counting) guarantee no false negatives for the given threshold;
        false positives are possible and harmless for the partitioners
        (a tail key treated as head only gains placement freedom).
        """
        if self.total == 0:
            return {}
        cutoff = threshold * self.total
        return {
            entry.key: entry.count
            for entry in self.entries()
            if entry.count >= cutoff
        }

    def __contains__(self, key: Key) -> bool:
        return self.estimate(key) > 0
