"""Common interface for frequency estimators (heavy-hitter sketches).

The partitioners only need three operations from a sketch:

* ``add(key)`` — account for one occurrence of ``key``;
* ``estimate(key)`` — an (over- or under-) estimate of the key's count;
* ``heavy_hitters(threshold)`` — the keys whose *relative* frequency is
  estimated to be at least ``threshold``.

Keeping the interface abstract lets D-Choices/W-Choices run with SpaceSaving
(the paper's choice) or with any of the alternatives for ablation studies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.types import Key


def runs_to_flags(runs: Sequence[int]) -> list[bool]:
    """Expand head-run lengths back into one boolean flag per message.

    Inverse of the run-length classification contract (see
    :meth:`FrequencyEstimator.add_and_classify_runs`): ``runs[i]`` heads,
    then one tail, for every entry but the last, which is the trailing head
    run.  The expansion runs on C-speed ``extend`` calls, so deriving flags
    from runs is cheap enough that sketches only implement the run form of
    the fused pass.
    """
    flags: list[bool] = []
    extend = flags.extend
    append = flags.append
    for run in runs[:-1]:
        if run:
            extend([True] * run)
        append(False)
    trailing = runs[-1]
    if trailing:
        extend([True] * trailing)
    return flags


@dataclass(frozen=True, slots=True)
class FrequencyEstimate:
    """An estimated count for a key, with the estimation error if known.

    ``count`` is the sketch's estimate; ``error`` is an upper bound on the
    overestimation, so the true count lies in ``[count - error, count]`` for
    counter-based sketches such as SpaceSaving.
    """

    key: Key
    count: int
    error: int = 0

    @property
    def guaranteed_count(self) -> int:
        """A lower bound on the true count of this key."""
        return max(0, self.count - self.error)


class FrequencyEstimator(abc.ABC):
    """Abstract streaming frequency estimator.

    Implementations must track the total number of observed items in
    :attr:`total` so relative frequencies can be computed without outside
    bookkeeping.
    """

    @property
    @abc.abstractmethod
    def total(self) -> int:
        """Total number of items observed so far."""

    @abc.abstractmethod
    def add(self, key: Key, count: int = 1) -> None:
        """Account for ``count`` occurrences of ``key``."""

    @abc.abstractmethod
    def estimate(self, key: Key) -> int:
        """Estimated count of ``key`` (0 for never-seen keys)."""

    @abc.abstractmethod
    def entries(self) -> Iterator[FrequencyEstimate]:
        """Iterate over all currently monitored keys."""

    def add_all(self, keys: Iterable[Key]) -> None:
        """Convenience: add each key of an iterable once.

        Implementations with a cheaper bulk path (SpaceSaving's run
        collapsing) override this; the result must equal element-wise
        :meth:`add` calls.  Concrete sketches also expose ``reset()`` to
        clear their counters in place — it is part of the informal protocol
        (used by the head/tail partitioners) rather than this ABC so that
        minimal third-party estimators remain valid.
        """
        for key in keys:
            self.add(key)

    def add_and_classify_batch(
        self,
        keys: Sequence[Key],
        threshold: float,
        warmup: int = 0,
        stop_at_head: bool = False,
        tail_out: list[Key] | None = None,
    ) -> list[bool]:
        """Account for a chunk of keys and classify each as head or tail.

        For every key, in order: ``add(key)``, then flag it as head when the
        observed total has reached ``warmup`` and the key's fresh estimate is
        at least ``threshold * total``.  This is the bulk form of the
        per-message ``add`` + ``estimate`` round trip the head/tail
        partitioners run on every message; implementations override it to
        fuse the two into one pass (SpaceSaving does), but the flags must be
        identical to this reference loop.

        With ``stop_at_head`` the pass stops right after the first key
        classified as head, returning a short list whose last flag is the
        only ``True``.  D-Choices uses this to park the sketch exactly at a
        solver-throttle checkpoint: keys after the checkpoint must not have
        been fed yet when the head signature is read.

        ``tail_out``, when given, receives every tail-classified key in
        stream order — the pass is already branching on the flag, so
        collecting the tail run here is cheaper than the caller re-walking
        the chunk to filter it.
        """
        flags: list[bool] = []
        append = flags.append
        add = self.add
        estimate = self.estimate
        tail_append = tail_out.append if tail_out is not None else None
        for key in keys:
            add(key)
            total = self.total
            is_head = total >= warmup and estimate(key) >= threshold * total
            append(is_head)
            if not is_head and tail_append is not None:
                tail_append(key)
            if stop_at_head and is_head:
                break
        return flags

    def add_and_classify_runs(
        self,
        keys: Sequence[Key],
        threshold: float,
        warmup: int = 0,
        tail_out: list[Key] | None = None,
    ) -> list[int]:
        """Run-length form of :meth:`add_and_classify_batch`.

        Returns the chunk's head/tail interleaving as head-run lengths:
        ``runs[i]`` is the number of consecutive head messages immediately
        before the ``i``-th tail message, and the final entry is the
        trailing head run, so ``len(runs) == number_of_tails + 1`` and
        ``sum(runs) + number_of_tails == len(keys)``.  ``tail_out`` (usually
        wanted — the tail keys are what the run consumer still needs)
        receives the tail keys in stream order.

        This is the natural shape for batched head/tail routing: the
        selection pass can count a head run down without touching a
        per-message flag, and on skewed streams — where head messages
        dominate by definition of the head — most messages never
        materialise an entry in any list at all.  The default derives the
        runs from :meth:`add_and_classify_batch`, so overriding sketches
        only need the fused flag pass for both contracts to agree.
        """
        sink = tail_out if tail_out is not None else []
        flags = self.add_and_classify_batch(keys, threshold, warmup, False, sink)
        runs = [0]
        for is_head in flags:
            if is_head:
                runs[-1] += 1
            else:
                runs.append(0)
        return runs

    def head_signature(self, threshold: float) -> tuple[int, int]:
        """Cheap summary of the current head: ``(cardinality, hottest count)``.

        Semantically pinned to :meth:`heavy_hitters`: the first component is
        ``len(heavy_hitters(threshold))`` and the second is the largest
        estimated count among those keys (``0`` when the head is empty).
        D-Choices polls this on its solver throttle, so implementations
        should override it when they can derive the pair without
        materialising the full head mapping; overrides must agree with their
        own ``heavy_hitters`` — including any error-correction the sketch
        applies to the cutoff (MisraGries, LossyCounting).
        """
        head = self.heavy_hitters(threshold)
        if not head:
            return (0, 0)
        return (len(head), max(head.values()))

    def head_counts(self, threshold: float) -> list[int]:
        """The estimated counts of the current head, keys dropped.

        Semantically ``list(heavy_hitters(threshold).values())`` in any
        order — the D-Choices solver input is the sorted count multiset, so
        producing the keys (and a dict around them) is wasted work on its
        path.  Sketches whose summary groups keys by count (SpaceSaving)
        override this with an enumeration-free walk; overrides must agree
        with their own ``heavy_hitters``.
        """
        return list(self.heavy_hitters(threshold).values())

    def frequency(self, key: Key) -> float:
        """Estimated relative frequency of ``key`` in [0, 1]."""
        if self.total == 0:
            return 0.0
        return self.estimate(key) / self.total

    def heavy_hitters(self, threshold: float) -> dict[Key, int]:
        """Keys whose estimated relative frequency is at least ``threshold``.

        Returns a mapping from key to estimated count.  Sketches with
        one-sided error (SpaceSaving, MisraGries with correction, Lossy
        Counting) guarantee no false negatives for the given threshold;
        false positives are possible and harmless for the partitioners
        (a tail key treated as head only gains placement freedom).
        """
        if self.total == 0:
            return {}
        cutoff = threshold * self.total
        return {
            entry.key: entry.count
            for entry in self.entries()
            if entry.count >= cutoff
        }

    def __contains__(self, key: Key) -> bool:
        return self.estimate(key) > 0
