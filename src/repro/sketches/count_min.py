"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

A linear sketch of ``depth x width`` counters.  Each key is hashed by
``depth`` independent functions; its estimate is the minimum of the touched
counters.  Estimates never underestimate; the overestimation is at most
``e/width * total`` with probability ``1 - e^-depth``.

Because a Count-Min sketch cannot enumerate the keys it has seen, heavy
hitter queries need a candidate set.  We keep a small exact candidate heap of
the keys with the largest estimates (the standard "CM + heap" construction),
which is enough to drive the head detection of D-Choices in ablations.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from repro.exceptions import ConfigurationError, SketchError
from repro.hashing.hash_family import stable_hash
from repro.sketches.base import FrequencyEstimate, FrequencyEstimator
from repro.types import Key


class CountMinSketch(FrequencyEstimator):
    """Count-Min sketch with a top-k candidate heap for heavy-hitter queries.

    Parameters
    ----------
    width:
        Number of counters per row; error is about ``total / width``.
    depth:
        Number of rows (independent hash functions).
    top_k:
        Size of the exact candidate set kept for heavy-hitter enumeration.
    seed:
        Seed of the row hash functions.
    """

    def __init__(self, width: int, depth: int = 4, top_k: int = 64, seed: int = 0) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        self._width = width
        self._depth = depth
        self._top_k = top_k
        self._seed = seed
        self._rows = [[0] * width for _ in range(depth)]
        self._total = 0
        # Exact estimates for the current candidate heavy hitters.
        self._candidates: dict[Key, int] = {}

    @classmethod
    def for_error(cls, epsilon: float, delta: float = 0.01, top_k: int = 64,
                  seed: int = 0) -> "CountMinSketch":
        """Size the sketch for additive error ``epsilon*total`` w.p. ``1-delta``."""
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        width = int(math.ceil(math.e / epsilon))
        depth = int(math.ceil(math.log(1.0 / delta)))
        return cls(width=width, depth=max(1, depth), top_k=top_k, seed=seed)

    @property
    def total(self) -> int:
        return self._total

    def reset(self) -> None:
        """Zero every cell in place (width/depth/seed are kept)."""
        for row in self._rows:
            for index in range(len(row)):
                row[index] = 0
        self._candidates.clear()
        self._total = 0

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    def _indexes(self, key: Key) -> list[int]:
        return [
            stable_hash(key, self._seed + row * 0x9E3779B9) % self._width
            for row in range(self._depth)
        ]

    def add(self, key: Key, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self._total += count
        estimate = math.inf
        for row, index in enumerate(self._indexes(key)):
            self._rows[row][index] += count
            estimate = min(estimate, self._rows[row][index])
        self._update_candidates(key, int(estimate))

    def _update_candidates(self, key: Key, estimate: int) -> None:
        if key in self._candidates or len(self._candidates) < self._top_k:
            self._candidates[key] = estimate
            return
        # Replace the smallest candidate when the new estimate beats it.
        smallest_key = min(self._candidates, key=self._candidates.__getitem__)
        if estimate > self._candidates[smallest_key]:
            del self._candidates[smallest_key]
            self._candidates[key] = estimate

    def add_and_classify_batch(
        self,
        keys,
        threshold: float,
        warmup: int = 0,
        stop_at_head: bool = False,
        tail_out: list | None = None,
    ) -> list[bool]:
        """Fused bulk update + head classification (see the base contract).

        The ``depth`` row hashes are by far the dominant cost of a Count-Min
        update, and the reference ``add`` + ``estimate`` loop pays them
        twice per message.  Here the estimate is the minimum of the cells
        the add itself just incremented — the same value ``estimate`` would
        recompute — so each message is hashed once.
        """
        flags: list[bool] = []
        append = flags.append
        rows = self._rows
        update_candidates = self._update_candidates
        indexes = self._indexes
        total = self._total
        tail_append = tail_out.append if tail_out is not None else None
        for key in keys:
            total += 1
            estimate = math.inf
            for row, index in enumerate(indexes(key)):
                cells = rows[row]
                value = cells[index] + 1
                cells[index] = value
                if value < estimate:
                    estimate = value
            estimate = int(estimate)
            update_candidates(key, estimate)
            is_head = total >= warmup and estimate >= threshold * total
            append(is_head)
            if not is_head and tail_append is not None:
                tail_append(key)
            if stop_at_head and is_head:
                break
        self._total = total
        return flags

    def estimate(self, key: Key) -> int:
        return min(self._rows[row][index] for row, index in enumerate(self._indexes(key)))

    def entries(self) -> Iterator[FrequencyEstimate]:
        for key in self._candidates:
            yield FrequencyEstimate(key, self.estimate(key), 0)

    def top(self, k: int) -> list[FrequencyEstimate]:
        """The ``k`` candidates with the largest estimates."""
        entries = list(self.entries())
        return heapq.nlargest(k, entries, key=lambda entry: entry.count)
