"""Lossy Counting (Manku & Motwani, VLDB 2002).

The stream is conceptually divided into windows of ``ceil(1/epsilon)`` items.
Each monitored key carries a count and a maximum-error term equal to the
window index when it was (re)inserted.  At window boundaries, keys whose
``count + error`` falls below the current window index are dropped.

Guarantees: estimated count underestimates by at most ``epsilon * total``,
and every key with true frequency above ``epsilon`` survives.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.base import FrequencyEstimate, FrequencyEstimator
from repro.types import Key


class LossyCounting(FrequencyEstimator):
    """Epsilon-deficient frequency counting.

    Examples
    --------
    >>> sketch = LossyCounting(epsilon=0.1)
    >>> sketch.add_all(["x"] * 60 + ["y"] * 30 + list(map(str, range(10))))
    >>> "x" in sketch.heavy_hitters(0.5)
    True
    """

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        self._epsilon = epsilon
        self._window = int(math.ceil(1.0 / epsilon))
        self._total = 0
        self._current_window = 1
        # key -> (count, max_error)
        self._counters: dict[Key, tuple[int, int]] = {}

    @property
    def total(self) -> int:
        return self._total

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def __len__(self) -> int:
        return len(self._counters)

    def reset(self) -> None:
        """Forget every counter in place (epsilon/window are kept)."""
        self._counters.clear()
        self._total = 0
        self._current_window = 1

    def add(self, key: Key, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        for _ in range(count):
            self._add_one(key)

    def _add_one(self, key: Key) -> None:
        self._total += 1
        if key in self._counters:
            current, error = self._counters[key]
            self._counters[key] = (current + 1, error)
        else:
            self._counters[key] = (1, self._current_window - 1)
        if self._total % self._window == 0:
            self._prune()
            self._current_window += 1

    def _prune(self) -> None:
        survivors = {
            key: (count, error)
            for key, (count, error) in self._counters.items()
            if count + error > self._current_window
        }
        self._counters = survivors

    def add_and_classify_batch(
        self,
        keys,
        threshold: float,
        warmup: int = 0,
        stop_at_head: bool = False,
        tail_out: list | None = None,
    ) -> list[bool]:
        """Fused bulk update + head classification (see the base contract).

        Inlines :meth:`_add_one`; at window boundaries the prune may evict
        the key that was just inserted, so the counter is re-read after the
        prune (and the local dict alias refreshed — ``_prune`` rebuilds the
        mapping) to keep the flags identical to ``add`` + ``estimate``.
        """
        flags: list[bool] = []
        append = flags.append
        counters = self._counters
        window = self._window
        total = self._total
        tail_append = tail_out.append if tail_out is not None else None
        for key in keys:
            total += 1
            entry = counters.get(key)
            if entry is not None:
                count = entry[0] + 1
                counters[key] = (count, entry[1])
            else:
                count = 1
                counters[key] = (1, self._current_window - 1)
            if not total % window:
                self._total = total
                self._prune()
                self._current_window += 1
                counters = self._counters
                entry = counters.get(key)
                count = entry[0] if entry is not None else 0
            is_head = total >= warmup and count >= threshold * total
            append(is_head)
            if not is_head and tail_append is not None:
                tail_append(key)
            if stop_at_head and is_head:
                break
        self._total = total
        return flags

    def estimate(self, key: Key) -> int:
        entry = self._counters.get(key)
        return entry[0] if entry is not None else 0

    def error(self, key: Key) -> int:
        entry = self._counters.get(key)
        return entry[1] if entry is not None else 0

    def entries(self) -> Iterator[FrequencyEstimate]:
        for key, (count, error) in self._counters.items():
            yield FrequencyEstimate(key, count, 0)

    def heavy_hitters(self, threshold: float) -> dict[Key, int]:
        """Keys with estimated frequency at least ``threshold - epsilon``.

        The epsilon slack compensates the (one-sided) underestimation so the
        result has no false negatives, as in the original paper.
        """
        if self.total == 0:
            return {}
        cutoff = (threshold - self._epsilon) * self.total
        return {
            key: count
            for key, (count, error) in self._counters.items()
            if count >= cutoff
        }
