"""The Misra-Gries frequent-elements algorithm (1982).

Misra-Gries keeps at most ``capacity`` counters.  A new key takes a free
counter; when none is free, *every* counter is decremented and zeroed
counters are released.  The estimate underestimates the true count by at most
``total / (capacity + 1)``.

Included as an ablation alternative to SpaceSaving: it has the opposite error
direction (underestimation) and lets us check how sensitive the D-Choices
head detection is to the specific sketch.
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.base import FrequencyEstimate, FrequencyEstimator
from repro.types import Key


class MisraGries(FrequencyEstimator):
    """Deterministic counter-based frequent elements sketch.

    Examples
    --------
    >>> sketch = MisraGries(capacity=2)
    >>> sketch.add_all(["a", "b", "a", "c", "a"])
    >>> sketch.estimate("a") >= 1
    True
    >>> "a" in sketch.heavy_hitters(0.5)
    True
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._counters: dict[Key, int] = {}
        self._total = 0
        # Cumulative amount subtracted from every counter; bounds the
        # underestimation of any monitored key.
        self._decrements = 0

    @property
    def total(self) -> int:
        return self._total

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._counters)

    def reset(self) -> None:
        """Forget every counter in place (capacity is kept)."""
        self._counters.clear()
        self._total = 0
        self._decrements = 0

    def add(self, key: Key, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self._total += count
        if key in self._counters:
            self._counters[key] += count
            return
        if len(self._counters) < self._capacity:
            self._counters[key] = count
            return
        # Decrement-all step.  With count > 1 we apply the textbook algorithm
        # ``count`` times in one shot: subtract the largest amount that keeps
        # the new key's counter non-negative.
        decrement = min(count, min(self._counters.values()))
        if decrement > 0:
            self._decrements += decrement
            for existing in list(self._counters):
                self._counters[existing] -= decrement
                if self._counters[existing] <= 0:
                    del self._counters[existing]
        remaining = count - decrement
        if remaining > 0 and len(self._counters) < self._capacity:
            self._counters[key] = remaining

    def add_and_classify_batch(
        self,
        keys,
        threshold: float,
        warmup: int = 0,
        stop_at_head: bool = False,
        tail_out: list | None = None,
    ) -> list[bool]:
        """Fused bulk update + head classification (see the base contract).

        The monitored-key increment and the free-counter insert are inlined;
        only the decrement-all step goes through :meth:`add`.  After an
        eviction round the new key may be left unmonitored (estimate 0),
        which the re-read of the counter reproduces exactly.
        """
        flags: list[bool] = []
        append = flags.append
        counters = self._counters
        capacity = self._capacity
        total = self._total
        tail_append = tail_out.append if tail_out is not None else None
        for key in keys:
            total += 1
            count = counters.get(key)
            if count is not None:
                count += 1
                counters[key] = count
            elif len(counters) < capacity:
                counters[key] = count = 1
            else:
                self._total = total - 1
                self.add(key)
                count = counters.get(key, 0)
            is_head = total >= warmup and count >= threshold * total
            append(is_head)
            if not is_head and tail_append is not None:
                tail_append(key)
            if stop_at_head and is_head:
                break
        self._total = total
        return flags

    def estimate(self, key: Key) -> int:
        return self._counters.get(key, 0)

    def error(self, key: Key) -> int:
        """Upper bound on the underestimation of any key's count."""
        return self._decrements

    def entries(self) -> Iterator[FrequencyEstimate]:
        for key, count in self._counters.items():
            yield FrequencyEstimate(key, count, 0)

    def heavy_hitters(self, threshold: float) -> dict[Key, int]:
        """Heavy hitters with a correction for the underestimation bias.

        Misra-Gries can *under*estimate by up to ``self._decrements``; to
        avoid false negatives we compare against the threshold minus that
        slack, mirroring how SpaceSaving avoids them by overestimating.
        """
        if self.total == 0:
            return {}
        cutoff = threshold * self.total - self._decrements
        return {
            key: count for key, count in self._counters.items() if count >= cutoff
        }

    def merge(self, other: "MisraGries") -> "MisraGries":
        """Merge two summaries (Agarwal et al., mergeable summaries)."""
        if not isinstance(other, MisraGries):
            raise SketchError("can only merge MisraGries with MisraGries")
        capacity = max(self._capacity, other._capacity)
        merged = MisraGries(capacity)
        merged._total = self._total + other._total
        combined: dict[Key, int] = dict(self._counters)
        for key, count in other._counters.items():
            combined[key] = combined.get(key, 0) + count
        kept = sorted(combined.items(), key=lambda item: item[1], reverse=True)
        if len(kept) > capacity:
            # subtract the (capacity+1)-th largest counter from the survivors
            pivot = kept[capacity][1]
            merged._decrements = self._decrements + other._decrements + pivot
            merged._counters = {
                key: count - pivot for key, count in kept[:capacity] if count > pivot
            }
        else:
            merged._decrements = self._decrements + other._decrements
            merged._counters = dict(kept)
        return merged
