"""Distributed heavy-hitter tracking across multiple sources.

The paper notes (Section III-A) that the head of the distribution is tracked
"in a distributed fashion across sources" using SpaceSaving and its
generalisation to the distributed setting (Berinde et al., TODS 2010).

Two modes are relevant for the reproduction:

* **Local mode** — each source runs its own SpaceSaving over the sub-stream
  it sees and derives the head from its local estimates.  This is what the
  partitioners do on the hot path (no coordination), and it works because the
  sources receive statistically similar sub-streams (shuffle-grouped input).
* **Merged mode** — summaries are periodically merged into a global view,
  the counterpart of the mergeable-summaries result.  The simulation engine
  uses this to report the "true" head, and the ablation benchmarks measure
  how much local-only tracking deviates from it.

:func:`merge_summaries` merges any number of SpaceSaving sketches;
:class:`DistributedHeavyHitters` wraps the per-source sketches and exposes
both views.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.space_saving import SpaceSaving
from repro.types import Key


def merge_summaries(summaries: Sequence[SpaceSaving]) -> SpaceSaving:
    """Merge several SpaceSaving summaries into one.

    The merge is associative; the result never underestimates the combined
    count of any key and its error bound is the sum of the inputs' bounds.
    """
    if not summaries:
        raise SketchError("cannot merge an empty collection of summaries")
    merged = summaries[0]
    for summary in summaries[1:]:
        merged = merged.merge(summary)
    return merged


class DistributedHeavyHitters:
    """Per-source SpaceSaving instances with an on-demand merged view.

    Parameters
    ----------
    num_sources:
        Number of independent sources feeding the partitioned stream.
    capacity:
        Capacity of each per-source sketch.

    Examples
    --------
    >>> tracker = DistributedHeavyHitters(num_sources=2, capacity=8)
    >>> for i, key in enumerate(["a", "a", "b", "a", "c", "a"]):
    ...     tracker.add(source=i % 2, key=key)
    >>> "a" in tracker.merged_heavy_hitters(0.5)
    True
    """

    def __init__(self, num_sources: int, capacity: int) -> None:
        if num_sources < 1:
            raise ConfigurationError(f"num_sources must be >= 1, got {num_sources}")
        self._sketches = [SpaceSaving(capacity) for _ in range(num_sources)]

    @property
    def num_sources(self) -> int:
        return len(self._sketches)

    def sketch(self, source: int) -> SpaceSaving:
        """The local sketch of ``source``."""
        self._check_source(source)
        return self._sketches[source]

    def add(self, source: int, key: Key, count: int = 1) -> None:
        """Account for ``count`` occurrences of ``key`` observed by ``source``."""
        self._check_source(source)
        self._sketches[source].add(key, count)

    def local_heavy_hitters(self, source: int, threshold: float) -> dict[Key, int]:
        """Heavy hitters according to ``source``'s local view only."""
        self._check_source(source)
        return self._sketches[source].heavy_hitters(threshold)

    def merged(self) -> SpaceSaving:
        """Merge all per-source summaries into a global summary."""
        return merge_summaries(self._sketches)

    def merged_heavy_hitters(self, threshold: float) -> dict[Key, int]:
        """Heavy hitters of the full stream according to the merged summary."""
        return self.merged().heavy_hitters(threshold)

    def total(self) -> int:
        """Total number of messages observed across all sources."""
        return sum(sketch.total for sketch in self._sketches)

    def disagreement(self, threshold: float) -> float:
        """Fraction of merged heavy hitters missed by at least one source.

        A diagnostic used by the ablation experiments: 0.0 means every source
        would route every hot key through the head path, exactly as the
        merged (global) view would.
        """
        global_head = set(self.merged_heavy_hitters(threshold))
        if not global_head:
            return 0.0
        missed = set()
        for source in range(self.num_sources):
            local_head = set(self.local_heavy_hitters(source, threshold))
            missed.update(global_head - local_head)
        return len(missed) / len(global_head)

    def _check_source(self, source: int) -> None:
        if not 0 <= source < len(self._sketches):
            raise ConfigurationError(
                f"source {source} outside [0, {len(self._sketches)})"
            )

    def add_stream(self, pairs: Iterable[tuple[int, Key]]) -> None:
        """Bulk-add ``(source, key)`` pairs."""
        for source, key in pairs:
            self.add(source, key)
