"""The SpaceSaving heavy-hitter algorithm (Metwally, Agrawal, El Abbadi 2005).

SpaceSaving keeps at most ``capacity`` monitored keys.  On arrival of a key:

* if it is monitored, increment its counter;
* otherwise, if there is room, start monitoring it with count 1;
* otherwise evict the key with the *minimum* counter ``min``, replace it with
  the new key, and set the new counter to ``min + 1`` with error ``min``.

Guarantees (with ``capacity = ceil(1/eps)``):

* every key with true count ``> eps * total`` is monitored (no false
  negatives above the threshold);
* for every monitored key, ``true_count <= estimate <= true_count + error``
  and ``error <= total / capacity``.

The implementation uses the "stream summary" structure from the original
paper: counters are grouped into buckets of equal count, kept in a doubly
linked list ordered by count.  This gives O(1) worst-case update, which
matters because the partitioners call ``add`` once per message.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.base import FrequencyEstimate, FrequencyEstimator, runs_to_flags
from repro.types import Key

#: Sentinel distinct from every stream key (including ``None``) for run
#: detection in :meth:`SpaceSaving.add_all`.
_NO_KEY = object()


class _Bucket:
    """A group of counters that share the same count value.

    Buckets form a doubly linked list ordered by ``count`` ascending.
    ``keys`` preserves insertion order (a dict used as an ordered set) so
    eviction picks the oldest minimal counter, matching the reference
    implementation's tie-breaking.
    """

    __slots__ = ("count", "keys", "prev", "next")

    def __init__(self, count: int) -> None:
        self.count = count
        self.keys: dict[Key, None] = {}
        self.prev: Optional["_Bucket"] = None
        self.next: Optional["_Bucket"] = None


class SpaceSaving(FrequencyEstimator):
    """Stream-summary implementation of SpaceSaving.

    Parameters
    ----------
    capacity:
        Maximum number of monitored keys.  To detect every key with relative
        frequency at least ``phi`` it suffices to set ``capacity >= 1/phi``;
        :meth:`for_threshold` computes that for you.

    Examples
    --------
    >>> sketch = SpaceSaving(capacity=2)
    >>> for key in ["a", "a", "b", "a", "c"]:
    ...     sketch.add(key)
    >>> sketch.estimate("a") >= 3   # never underestimates
    True
    >>> sorted(sketch.heavy_hitters(0.5))
    ['a']
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._total = 0
        # key -> (bucket, error)
        self._where: dict[Key, _Bucket] = {}
        self._errors: dict[Key, int] = {}
        self._head: Optional[_Bucket] = None  # bucket with the minimum count

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def for_threshold(cls, threshold: float, slack: float = 1.0) -> "SpaceSaving":
        """Create a sketch able to track keys of relative frequency >= threshold.

        ``slack`` > 1 over-provisions the sketch (more counters than strictly
        necessary), which reduces the estimation error of the reported heavy
        hitters; the paper's setting of theta = 1/(5n) with default slack
        yields a sketch of 5n counters — still O(n) memory per source.

        The capacity is ``ceil(slack / threshold)``: rounding *up* is what
        keeps the no-false-negative guarantee (``capacity >= 1/phi``) intact
        for every threshold.  Rounding to nearest would under-provision —
        e.g. ``for_threshold(0.4)`` would get 2 counters where the guarantee
        needs ``ceil(1 / 0.4) = 3``.
        """
        if threshold <= 0.0 or threshold > 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        if slack <= 0.0:
            raise ConfigurationError(f"slack must be positive, got {slack}")
        capacity = max(1, math.ceil(slack / threshold))
        return cls(capacity)

    # ------------------------------------------------------------------ #
    # FrequencyEstimator interface
    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        return self._total

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._where)

    def add(self, key: Key, count: int = 1) -> None:
        if count == 1:  # the streaming hot case: take the fused fast path
            self.add_and_estimate(key)
            return
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self._total += count
        if key in self._where:
            self._increment(key, count)
            return
        if len(self._where) < self._capacity:
            self._insert_new(key, count, error=0)
            return
        self._replace_minimum(key, count)

    def add_and_estimate(self, key: Key) -> int:
        """Account for one occurrence of ``key`` and return its new estimate.

        Semantically identical to ``add(key); estimate(key)`` but fused: the
        routing hot path calls both on every message, and the combined form
        saves a monitored-key lookup plus the bucket relink going through
        three helper calls.  The unit-increment case is fully inlined.
        """
        self._total += 1
        where = self._where
        bucket = where.get(key)
        if bucket is not None:
            new_count = bucket.count + 1
            nxt = bucket.next
            if len(bucket.keys) == 1 and (nxt is None or nxt.count > new_count):
                # The key is alone in its count class and moving it up does
                # not collide with the successor class: bump the bucket in
                # place.  This is the steady state of every hot key (unique
                # high count), so the hottest messages cost one dict hit and
                # an integer increment — no allocation, no relinking.
                bucket.count = new_count
                return new_count
            # Inlined unit _increment: move the key one count class up.
            del bucket.keys[key]
            if nxt is not None and nxt.count == new_count:
                target = nxt
            else:
                target = _Bucket(new_count)
                target.prev = bucket
                target.next = nxt
                if nxt is not None:
                    nxt.prev = target
                bucket.next = target
            target.keys[key] = None
            where[key] = target
            if not bucket.keys:
                prev = bucket.prev
                nxt = bucket.next
                if prev is not None:
                    prev.next = nxt
                else:
                    self._head = nxt
                if nxt is not None:
                    nxt.prev = prev
                bucket.prev = bucket.next = None
            return new_count
        if len(where) < self._capacity:
            self._insert_new(key, 1, error=0)
            return 1
        self._replace_minimum(key, 1)
        return where[key].count

    def add_and_classify_batch(
        self,
        keys,
        threshold: float,
        warmup: int = 0,
        stop_at_head: bool = False,
        tail_out: list | None = None,
    ) -> list[bool]:
        """Fused bulk update + head classification (see the base contract).

        The full-chunk form derives its flags from
        :meth:`add_and_classify_runs` — the run pass is the one true hot
        loop and the expansion runs at C speed — so there is exactly one
        inlined copy of the update machinery.  The ``stop_at_head`` form
        keeps its own loop: it must halt the sketch feed mid-chunk, and the
        scans D-Choices uses it for are short by construction.
        """
        if not stop_at_head:
            return runs_to_flags(
                self.add_and_classify_runs(keys, threshold, warmup, tail_out)
            )
        flags: list[bool] = []
        append = flags.append
        where_get = self._where.get
        slow_add = self.add_and_estimate
        total = self._total
        tail_append = tail_out.append if tail_out is not None else None
        for key in keys:
            total += 1
            bucket = where_get(key)
            if bucket is not None:
                new_count = bucket.count + 1
                if len(bucket.keys) == 1:
                    nxt = bucket.next
                    if nxt is None or nxt.count > new_count:
                        bucket.count = new_count
                    else:
                        self._total = total - 1
                        new_count = slow_add(key)
                else:
                    self._total = total - 1
                    new_count = slow_add(key)
            else:
                self._total = total - 1
                new_count = slow_add(key)
            is_head = total >= warmup and new_count >= threshold * total
            append(is_head)
            if is_head:
                break
            if tail_append is not None:
                tail_append(key)
        self._total = total
        return flags

    def add_and_classify_runs(
        self,
        keys,
        threshold: float,
        warmup: int = 0,
        tail_out: list | None = None,
    ) -> list[int]:
        """Fused bulk update + run-length head classification.

        THE routing hot loop: every message of every head/tail scheme's
        batch path goes through here exactly once.  The whole monitored-key
        update of :meth:`add_and_estimate` is inlined — the steady state
        (key alone in its count class) is a dict hit and an integer bump,
        a count-class relink touches no helper either — and only the
        unmonitored cases (insert, eviction) take a method call.  A head
        message costs one integer bump of the open run instead of a list
        append, which on the skewed streams the head/tail split exists for
        is most messages.  Flags derived from the returned runs are
        identical to the reference ``add`` + ``estimate`` loop's.
        """
        runs: list[int] = []
        rappend = runs.append
        where = self._where
        where_get = where.get
        slow_add = self.add_and_estimate
        total = self._total
        sink = tail_out if tail_out is not None else []
        tail_append = sink.append
        run = 0
        for key in keys:
            total += 1
            bucket = where_get(key)
            if bucket is not None:
                new_count = bucket.count + 1
                nxt = bucket.next
                if len(bucket.keys) == 1 and (nxt is None or nxt.count > new_count):
                    bucket.count = new_count
                else:
                    # Inlined unit relink (mirrors add_and_estimate): move
                    # the key one count class up, dropping its old class if
                    # that leaves it empty.
                    del bucket.keys[key]
                    if nxt is not None and nxt.count == new_count:
                        target = nxt
                    else:
                        target = _Bucket(new_count)
                        target.prev = bucket
                        target.next = nxt
                        if nxt is not None:
                            nxt.prev = target
                        bucket.next = target
                    target.keys[key] = None
                    where[key] = target
                    if not bucket.keys:
                        prev = bucket.prev
                        nxt = bucket.next
                        if prev is not None:
                            prev.next = nxt
                        else:
                            self._head = nxt
                        if nxt is not None:
                            nxt.prev = prev
                        bucket.prev = bucket.next = None
            else:
                self._total = total - 1
                new_count = slow_add(key)
            if total >= warmup and new_count >= threshold * total:
                run += 1
            else:
                rappend(run)
                run = 0
                tail_append(key)
        rappend(run)
        self._total = total
        return runs

    def add_all(self, keys) -> None:
        """Bulk update: collapse runs of equal keys into one counter move.

        A run of ``r`` consecutive occurrences of the same key is accounted
        with a single ``add(key, r)`` — one total update and one
        stream-summary relink instead of ``r``.  SpaceSaving's update is
        weight-linear (``add(k, r)`` and ``r`` times ``add(k, 1)`` yield the
        same summary when nothing intervenes), so the result is identical to
        element-wise feeding; skewed streams, where the hot key arrives in
        bursts, see most of the benefit.
        """
        pending: Key = _NO_KEY
        run = 0
        for key in keys:
            if key == pending:
                run += 1
            else:
                if run:
                    self.add(pending, run)
                pending = key
                run = 1
        if run:
            self.add(pending, run)

    def reset(self) -> None:
        """Forget every counter in place (capacity is kept)."""
        self._total = 0
        self._where.clear()
        self._errors.clear()
        self._head = None

    def grow(self, new_capacity: int) -> None:
        """Raise the capacity in place, preserving every monitored counter.

        Capacity only gates the *insertion* of new keys, so growing is free:
        existing counters, errors and the bucket list stay untouched, and the
        sketch simply stops evicting until the larger budget fills up.  Used
        by the head/tail partitioners when a rescale re-derives a smaller
        theta whose head no longer fits the original sizing.  Shrinking is
        rejected — it would have to pick eviction victims and would weaken
        the error bound of the surviving counters.
        """
        if new_capacity < self._capacity:
            raise SketchError(
                f"cannot shrink capacity {self._capacity} to {new_capacity}"
            )
        self._capacity = new_capacity

    def estimate(self, key: Key) -> int:
        bucket = self._where.get(key)
        return bucket.count if bucket is not None else 0

    def error(self, key: Key) -> int:
        """Overestimation bound for ``key`` (0 if the key is not monitored)."""
        return self._errors.get(key, 0)

    def guaranteed(self, key: Key) -> int:
        """Guaranteed (lower bound) count for ``key``."""
        bucket = self._where.get(key)
        if bucket is None:
            return 0
        return bucket.count - self._errors[key]

    def entries(self) -> Iterator[FrequencyEstimate]:
        bucket = self._head
        while bucket is not None:
            for key in bucket.keys:
                yield FrequencyEstimate(key, bucket.count, self._errors[key])
            bucket = bucket.next

    def min_count(self) -> int:
        """Smallest monitored count (0 when the sketch is empty)."""
        return self._head.count if self._head is not None else 0

    def head_signature(self, threshold: float) -> tuple[int, int]:
        """``(len(heavy_hitters(threshold)), hottest count)`` without the dict.

        The stream summary groups keys into count classes, so the pair falls
        out of one walk over the bucket list — O(number of distinct counts)
        instead of materialising a :class:`FrequencyEstimate` per monitored
        key the way ``heavy_hitters`` does.  D-Choices polls this on every
        throttled solver check, which made the full ``current_head()`` scan
        the single hottest spot of its routing profile.
        """
        total = self._total
        if total == 0:
            return (0, 0)
        cutoff = threshold * total
        cardinality = 0
        hottest = 0
        bucket = self._head
        while bucket is not None:
            if bucket.count >= cutoff:
                # Buckets are ordered by count ascending: once one qualifies
                # they all do, and the last one seen holds the maximum.
                cardinality += len(bucket.keys)
                hottest = bucket.count
            bucket = bucket.next
        return (cardinality, hottest)

    def head_counts(self, threshold: float) -> list[int]:
        """The head's estimated counts from one bucket walk (see the base
        contract): each qualifying count class contributes its count once
        per monitored key, no per-key objects or dict involved."""
        total = self._total
        if total == 0:
            return []
        cutoff = threshold * total
        counts: list[int] = []
        bucket = self._head
        while bucket is not None:
            count = bucket.count
            if count >= cutoff:
                counts.extend([count] * len(bucket.keys))
            bucket = bucket.next
        return counts

    # ------------------------------------------------------------------ #
    # internal stream-summary maintenance
    # ------------------------------------------------------------------ #
    def _insert_new(self, key: Key, count: int, error: int) -> None:
        bucket = self._find_or_create_bucket(count, hint=self._head)
        bucket.keys[key] = None
        self._where[key] = bucket
        self._errors[key] = error

    def _increment(self, key: Key, count: int) -> None:
        bucket = self._where[key]
        del bucket.keys[key]
        target = self._find_or_create_bucket(bucket.count + count, hint=bucket)
        target.keys[key] = None
        self._where[key] = target
        self._maybe_drop(bucket)

    def _replace_minimum(self, key: Key, count: int) -> None:
        assert self._head is not None  # capacity >= 1 and sketch is full
        min_bucket = self._head
        # evict the oldest key in the minimum bucket
        victim = next(iter(min_bucket.keys))
        del min_bucket.keys[victim]
        del self._where[victim]
        del self._errors[victim]
        new_count = min_bucket.count + count
        error = min_bucket.count
        target = self._find_or_create_bucket(new_count, hint=min_bucket)
        target.keys[key] = None
        self._where[key] = target
        self._errors[key] = error
        self._maybe_drop(min_bucket)

    def _find_or_create_bucket(self, count: int, hint: Optional[_Bucket]) -> _Bucket:
        """Locate the bucket with ``count``, creating it after ``hint`` if needed.

        ``hint`` is a bucket whose count is <= ``count`` (the bucket the key
        is moving out of, or the head).  For unit increments the target is
        either ``hint`` itself, its successor, or a new bucket right after
        ``hint`` — all O(1).  For larger ``count`` jumps (merge operations)
        we walk forward, which is linear in the number of buckets but only
        used off the hot path.
        """
        if self._head is None:
            bucket = _Bucket(count)
            self._head = bucket
            return bucket

        current = hint if hint is not None else self._head
        if current.count > count:
            current = self._head
        # Walk forward until the next bucket would overshoot.
        while current.next is not None and current.next.count <= count:
            current = current.next
        if current.count == count:
            return current
        if current.count < count:
            return self._insert_after(current, count)
        # current.count > count can only happen when current is the head and
        # the head already exceeds count: insert a new bucket before it.
        return self._insert_before(current, count)

    def _insert_after(self, bucket: _Bucket, count: int) -> _Bucket:
        new = _Bucket(count)
        new.prev = bucket
        new.next = bucket.next
        if bucket.next is not None:
            bucket.next.prev = new
        bucket.next = new
        return new

    def _insert_before(self, bucket: _Bucket, count: int) -> _Bucket:
        new = _Bucket(count)
        new.next = bucket
        new.prev = bucket.prev
        if bucket.prev is not None:
            bucket.prev.next = new
        else:
            self._head = new
        bucket.prev = new
        return new

    def _maybe_drop(self, bucket: _Bucket) -> None:
        if bucket.keys:
            return
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._head = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev
        bucket.prev = bucket.next = None

    # ------------------------------------------------------------------ #
    # transplantable state (adaptive scheme switching)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Snapshot of the summary, sufficient to rebuild it byte-identically.

        Entries are listed in summary order — count classes ascending, keys
        within a class in insertion order — which is exactly the order
        :meth:`from_state` must replay them in: the stream summary's future
        behaviour (bucket relinks, eviction of the *oldest* minimal counter)
        depends on that order, not just on the (key, count, error) multiset.
        """
        return {
            "capacity": self._capacity,
            "total": self._total,
            "entries": [
                (entry.key, entry.count, entry.error) for entry in self.entries()
            ],
        }

    @classmethod
    def from_state(cls, state: dict, capacity: int | None = None) -> "SpaceSaving":
        """Rebuild a sketch from :meth:`export_state` output.

        With the exported capacity the result is byte-identical to the
        original — same buckets, same within-bucket order, same total — so a
        partitioner adopting another's sketch continues exactly where the
        donor left off instead of cold-starting through the warmup again.
        ``capacity`` overrides the sizing (an adopting scheme may need more
        counters for its own theta); a smaller capacity keeps the largest
        counters, like :meth:`merge` does.
        """
        target = int(capacity if capacity is not None else state["capacity"])
        if target < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {target}")
        sketch = cls(target)
        entries = state["entries"]
        # Entries are stored ascending by count: the suffix holds the largest.
        for key, count, error in entries[-target:] if len(entries) > target else entries:
            sketch._insert_new(key, count, error)
        sketch._total = int(state["total"])
        return sketch

    # ------------------------------------------------------------------ #
    # merging (used by the distributed generalisation)
    # ------------------------------------------------------------------ #
    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Return a new sketch summarising the union of both streams.

        Follows the mergeable-summaries construction (Berinde et al. 2010;
        Agarwal et al. 2012): sum estimates and errors key-wise, treating a
        key absent from one sketch as having that sketch's minimum count as
        estimate and error, then keep the ``capacity`` largest counters.
        The result never underestimates any key of the combined stream and
        its error bound is the sum of the two sketches' error bounds.
        """
        if not isinstance(other, SpaceSaving):
            raise SketchError("can only merge SpaceSaving with SpaceSaving")
        capacity = max(self._capacity, other._capacity)
        min_self = self.min_count() if len(self) >= self._capacity else 0
        min_other = other.min_count() if len(other) >= other._capacity else 0

        combined: dict[Key, tuple[int, int]] = {}
        for entry in self.entries():
            combined[entry.key] = (entry.count, entry.error)
        for entry in other.entries():
            if entry.key in combined:
                count, error = combined[entry.key]
                combined[entry.key] = (count + entry.count, error + entry.error)
            else:
                combined[entry.key] = (
                    entry.count + min_self,
                    entry.error + min_self,
                )
        # Keys present only in self get the other sketch's minimum added.
        for entry in self.entries():
            if other.estimate(entry.key) == 0:
                count, error = combined[entry.key]
                combined[entry.key] = (count + min_other, error + min_other)

        merged = SpaceSaving(capacity)
        merged._total = self._total + other._total
        kept = sorted(combined.items(), key=lambda item: item[1][0], reverse=True)
        for key, (count, error) in kept[:capacity]:
            merged._insert_new(key, count, error)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaceSaving(capacity={self._capacity}, monitored={len(self)}, "
            f"total={self._total})"
        )
