"""Stream-partitioning simulator (the counterpart of the authors' SLBSimulator).

The simulator reproduces the setting of Section V-A: the simplest possible
DAG with a set of sources, a set of workers and one partitioned stream in
between.  The input stream is shuffle-grouped over the sources; each source
runs its own instance of the grouping scheme (with local-only load
information, exactly as in the paper) and forwards messages to workers.  The
engine tracks the global load of each worker and derives the imbalance
metric ``I(t)``.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ImbalanceTimeSeries, LoadTracker
from repro.simulation.results import SimulationResult
from repro.simulation.runner import run_simulation, sweep

__all__ = [
    "ImbalanceTimeSeries",
    "LoadTracker",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "run_simulation",
    "sweep",
]
