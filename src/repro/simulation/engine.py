"""The partitioning simulation engine.

The engine wires together:

* a workload (an iterable of keys);
* ``s`` sources, each holding its own partitioner instance (so load
  estimation and heavy-hitter tracking are local to the sender, as in the
  paper);
* ``n`` workers, represented by the global :class:`LoadTracker` and a
  per-worker set of keys (to measure the worker-side memory of
  Section IV-B).

The input stream is distributed over sources round-robin, which models the
shuffle-grouped edge between the spout and the sources in the evaluation
setup (Section V-A).

When the configuration carries a rescale plan, the engine replays its
worker join/leave/fail events at their exact global stream offsets — in the
batched path by splitting chunks at event boundaries, so batched and scalar
runs stay byte-identical — applies the plan's policy to every source's
partitioner, resizes the tracker and the worker-side key state, and feeds a
:class:`~repro.elasticity.accountant.MigrationCostAccountant` that measures
keys moved, state migrated/lost and tuples misrouted.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Sequence

from repro.elasticity.accountant import MigrationCostAccountant
from repro.elasticity.events import RescaleEvent
from repro.elasticity.policies import get_policy
from repro.exceptions import ConfigurationError, SimulationError
from repro.partitioning.base import Partitioner
from repro.partitioning.registry import canonical_name, create_partitioner
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import (
    ImbalanceTimeSeries,
    LoadTracker,
    WindowedImbalanceSeries,
)
from repro.simulation.results import SimulationResult
from repro.types import Key


class SimulationEngine:
    """Runs one grouping scheme over one workload.

    Examples
    --------
    >>> from repro.simulation.config import SimulationConfig
    >>> config = SimulationConfig(scheme="PKG", num_workers=4, num_sources=2)
    >>> engine = SimulationEngine(config)
    >>> result = engine.run(["a", "b", "a", "c"] * 10)
    >>> result.num_messages
    40
    """

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._scheme = canonical_name(config.scheme)
        self._sources = self._build_sources()
        self._tracker = LoadTracker(
            config.num_workers, track_head_tail=config.track_head_tail
        )
        self._series = ImbalanceTimeSeries(interval=config.track_interval)
        # worker -> set of keys that hit it (memory measurement)
        self._worker_keys: list[set[Key]] = [
            set() for _ in range(config.num_workers)
        ]
        self._head_keys: set[Key] = set()
        # In columnar mode the worker-side key state holds interned ids;
        # this is the dictionary that decodes them (None in scalar mode).
        self._columnar_dict = None
        # Elasticity: the pending event schedule and the cost accountant
        # (both None/empty in the paper's fixed-worker setting).
        plan = config.rescale_plan
        self._pending_events: list[RescaleEvent] = list(plan.events) if plan else []
        self._accountant: MigrationCostAccountant | None = None
        if plan:
            self._accountant = MigrationCostAccountant(
                policy=get_policy(plan.policy),
                migration_window=plan.migration_window,
            )
        # Adaptive sources price their scheme switches through the same
        # accountant, so one exists whenever any source can switch — even in
        # the fixed-worker setting where no plan would have created it.
        adaptive = [
            source
            for source in self._sources
            if callable(getattr(source, "bind_accountant", None))
        ]
        if adaptive and self._accountant is None:
            self._accountant = MigrationCostAccountant(
                policy=get_policy(config.rescale_policy),
                migration_window=config.migration_window,
            )
        for index, source in enumerate(self._sources):
            bind = getattr(source, "bind_accountant", None)
            if callable(bind):
                # Per-source positions map to approximate global stream
                # offsets: source i routes the messages with index
                # position * num_sources + i.
                bind(
                    self._accountant,
                    offset_scale=config.num_sources,
                    offset_base=index,
                )
        self._window_series: WindowedImbalanceSeries | None = (
            WindowedImbalanceSeries(interval=config.imbalance_window)
            if config.imbalance_window > 0
            else None
        )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _build_sources(self) -> list[Partitioner]:
        """One partitioner per source.

        All sources share the hashing seed (``config.seed``) so they agree on
        each key's candidate workers — this is what makes routing-table-free
        schemes possible.  Schemes with per-source randomness that must
        differ across sources (shuffle grouping's starting offset) receive a
        distinct seed instead, because nothing about SG requires agreement.
        """
        config = self._config
        sources = []
        for index in range(config.num_sources):
            options = dict(config.scheme_options)
            seed = config.seed
            if self._scheme == "SG":
                seed = config.seed + index
            sources.append(
                create_partitioner(
                    self._scheme,
                    num_workers=config.num_workers,
                    seed=seed,
                    **options,
                )
            )
        return sources

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def sources(self) -> list[Partitioner]:
        return self._sources

    @property
    def tracker(self) -> LoadTracker:
        return self._tracker

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, keys: Iterable[Key]) -> SimulationResult:
        """Consume the workload and return the aggregated result.

        With ``config.batch_size > 1`` the stream is processed in chunks:
        each chunk is split over the sources round-robin (by global message
        index, exactly as the scalar loop assigns them), every source routes
        its share through ``route_batch``, and the decisions are
        re-interleaved back into stream order before metrics are recorded.
        Sources share no state, so the per-source key subsequences — and
        therefore every routing decision and every recorded metric — are
        identical to one-at-a-time routing.

        With ``config.columnar`` the same chunking runs over interned key-id
        arrays (:class:`~repro.workloads.columnar.ColumnarBatch`) and the
        sources route through ``route_batch_columnar`` — still byte-identical,
        but string keys are hashed only once, at interning.
        """
        if self._config.columnar:
            index = self._run_columnar(keys)
        elif self._config.batch_size > 1:
            index = self._run_batched(keys)
        else:
            index = self._run_sequential(keys)
        if index == 0:
            raise ConfigurationError("cannot simulate an empty workload")
        self._series.final(self._tracker)
        return self._build_result(index)

    def _run_sequential(self, keys: Iterable[Key]) -> int:
        num_sources = self._config.num_sources
        sources = self._sources
        tracker = self._tracker
        series = self._series
        window_series = self._window_series
        worker_keys = self._worker_keys
        head_keys = self._head_keys
        events = self._pending_events
        accountant = self._accountant

        index = 0
        for key in keys:
            while events and events[0].offset <= index:
                self._apply_rescale(events.pop(0))
            source = sources[index % num_sources]
            decision = source.route_with_decision(key)
            if accountant is not None and accountant.window_open:
                accountant.tick(key)
            tracker.record(decision.worker, is_head=decision.is_head)
            worker_keys[decision.worker].add(key)
            if decision.is_head:
                head_keys.add(key)
            series.maybe_record(tracker)
            if window_series is not None:
                window_series.maybe_record(tracker)
            index += 1
        return index

    def _run_batched(self, keys: Iterable[Key]) -> int:
        config = self._config
        num_sources = config.num_sources
        chunk_size = config.batch_size * num_sources
        events = self._pending_events

        if hasattr(keys, "iter_batches"):
            chunks: Iterator[list[Key]] = keys.iter_batches(chunk_size)
        else:
            iterator = iter(keys)
            chunks = iter(lambda: list(islice(iterator, chunk_size)), [])

        index = 0
        for chunk in chunks:
            if not chunk:
                continue
            # Split the chunk at rescale-event boundaries: every message
            # with a global index >= an event's offset must be routed by
            # the post-event topology, exactly as in the scalar loop.
            position = 0
            remaining = len(chunk)
            while remaining:
                while events and events[0].offset <= index:
                    self._apply_rescale(events.pop(0))
                if events:
                    span = min(remaining, events[0].offset - index)
                else:
                    span = remaining
                if position == 0 and span == len(chunk):
                    part: Sequence[Key] = chunk
                else:
                    part = chunk[position : position + span]
                self._route_span(part, index)
                index += span
                position += span
                remaining -= span
        return index

    def _run_columnar(self, keys: Iterable[Key]) -> int:
        """Batched execution over interned key-id arrays.

        Mirrors :meth:`_run_batched` — same chunk size, same rescale-event
        splitting — but each chunk is a :class:`ColumnarBatch` whose ids were
        interned once at the source.  Workloads exposing
        ``iter_batches_columnar`` emit batches natively; any other iterable
        is wrapped through the generic chunker.
        """
        config = self._config
        num_sources = config.num_sources
        chunk_size = config.batch_size * num_sources
        events = self._pending_events

        if hasattr(keys, "iter_batches_columnar"):
            batches = keys.iter_batches_columnar(chunk_size)
        else:
            from repro.workloads.columnar import iter_batches_columnar

            batches = iter_batches_columnar(keys, chunk_size)

        index = 0
        for batch in batches:
            if not len(batch):
                continue
            self._columnar_dict = batch.dictionary
            position = 0
            remaining = len(batch)
            while remaining:
                while events and events[0].offset <= index:
                    self._apply_rescale(events.pop(0))
                if events:
                    span = min(remaining, events[0].offset - index)
                else:
                    span = remaining
                if position == 0 and span == len(batch):
                    part = batch
                else:
                    part = batch.slice(position, position + span)
                self._route_span_columnar(part, index)
                index += span
                position += span
                remaining -= span
        return index

    def _route_span(self, part: Sequence[Key], index: int) -> None:
        """Route one event-free span of the stream through all sources."""
        num_sources = self._config.num_sources
        sources = self._sources
        tracker = self._tracker
        series = self._series
        window_series = self._window_series
        worker_keys = self._worker_keys
        head_keys = self._head_keys
        accountant = self._accountant

        # Round-robin split by *global* index, as the scalar loop does;
        # the shift keeps the mapping right when a span boundary (from a
        # workload's own iter_batches granularity, or from a rescale event
        # splitting the chunk) is not a multiple of num_sources.
        shift = index % num_sources
        per_source = [
            part[(source - shift) % num_sources :: num_sources]
            for source in range(num_sources)
        ]
        workers = []
        flags = []
        for source, source_keys in zip(sources, per_source):
            source_flags: list[bool] = []
            workers.append(source.route_batch(source_keys, head_flags=source_flags))
            flags.append(source_flags)
        positions = [0] * num_sources
        for key in part:
            source_index = index % num_sources
            position = positions[source_index]
            positions[source_index] = position + 1
            worker = workers[source_index][position]
            is_head = flags[source_index][position]
            if accountant is not None and accountant.window_open:
                accountant.tick(key)
            tracker.record(worker, is_head=is_head)
            worker_keys[worker].add(key)
            if is_head:
                head_keys.add(key)
            series.maybe_record(tracker)
            if window_series is not None:
                window_series.maybe_record(tracker)
            index += 1

    def _route_span_columnar(self, batch, index: int) -> None:
        """Route one event-free columnar span through all sources.

        Identical structure to :meth:`_route_span`; the per-source shares
        are strided views over the id array and the worker-side key state
        accumulates ids instead of keys (a bijection, so every set-valued
        metric — memory entries, distinct head keys — is unchanged).  The
        misroute accountant also ticks in id space, consistent with the
        id-space moved-key sets of :meth:`_apply_rescale`.
        """
        num_sources = self._config.num_sources
        sources = self._sources
        tracker = self._tracker
        series = self._series
        window_series = self._window_series
        worker_keys = self._worker_keys
        head_keys = self._head_keys
        accountant = self._accountant

        shift = index % num_sources
        workers = []
        flags = []
        for source_index, source in enumerate(sources):
            sub = batch.strided((source_index - shift) % num_sources, num_sources)
            source_flags: list[bool] = []
            workers.append(source.route_batch_columnar(sub, head_flags=source_flags))
            flags.append(source_flags)
        positions = [0] * num_sources
        for kid in batch.ids.tolist():
            source_index = index % num_sources
            position = positions[source_index]
            positions[source_index] = position + 1
            worker = workers[source_index][position]
            is_head = flags[source_index][position]
            if accountant is not None and accountant.window_open:
                accountant.tick(kid)
            tracker.record(worker, is_head=is_head)
            worker_keys[worker].add(kid)
            if is_head:
                head_keys.add(kid)
            series.maybe_record(tracker)
            if window_series is not None:
                window_series.maybe_record(tracker)
            index += 1

    # ------------------------------------------------------------------ #
    # elasticity
    # ------------------------------------------------------------------ #
    def _candidate_snapshot(
        self, probe: Partitioner, observed: set[Key]
    ) -> dict[Key, frozenset[int]]:
        """Candidate sets of every observed key, keyed as the engine saw them.

        In columnar mode ``observed`` holds interned ids: the probe hashes
        the decoded key (candidates are a function of the key's bytes) but
        the map stays keyed by id, so moved-key sets, the migration loop and
        the accountant all remain in id space.
        """
        dictionary = self._columnar_dict
        if dictionary is None:
            return {key: frozenset(probe.key_candidates(key)) for key in observed}
        return {
            kid: frozenset(probe.key_candidates(dictionary.key_of(kid)))
            for kid in observed
        }

    def _apply_rescale(self, event: RescaleEvent) -> None:
        """Apply one worker join/leave/fail to every layer of the run.

        Steps, in order: snapshot each observed key's candidate set, apply
        the plan's policy to every source partitioner, resize the global
        tracker and the worker-side key state, re-snapshot candidates and
        charge the accountant with the keys that moved, the state entries
        that migrated (or died with a failed worker) and — for policies
        with a transition window — open the misroute window.
        """
        accountant = self._accountant
        assert accountant is not None  # only called when a plan exists
        sources = self._sources
        old_num_workers = sources[0].num_workers
        new_num_workers = event.new_num_workers(old_num_workers)
        if new_num_workers < 1:  # validated at config time; defensive here
            raise SimulationError(
                f"rescale event {event.spec} would drop below 1 worker"
            )
        record = accountant.begin_event(event, old_num_workers, new_num_workers)

        # All sources share the hashing seed, so one probe suffices to
        # observe candidate assignments (SG reports no affinity).
        probe = sources[0]
        worker_keys = self._worker_keys
        observed: set[Key] = set().union(*worker_keys) if worker_keys else set()
        before = self._candidate_snapshot(probe, observed)

        policy = accountant.policy
        for source in sources:
            policy.apply(source, new_num_workers)
        self._tracker.rescale(new_num_workers)

        removed_entries = 0
        if new_num_workers > old_num_workers:
            worker_keys.extend(
                set() for _ in range(new_num_workers - old_num_workers)
            )
        else:
            for _ in range(old_num_workers - new_num_workers):
                removed_entries += len(worker_keys[-1])
                worker_keys.pop()

        after = self._candidate_snapshot(probe, observed)
        moved = frozenset(
            key for key in observed if before[key] and before[key] != after[key]
        )
        # State of moved keys still held on surviving workers must be handed
        # to the keys' new candidates; the departing worker's entries are
        # handed off on a graceful leave and lost on a failure.
        entries_migrated = sum(
            1
            for keys_on_worker in worker_keys
            for key in keys_on_worker
            if key in moved
        )
        entries_lost = 0
        if new_num_workers < old_num_workers:
            if event.loses_state:
                entries_lost = removed_entries
            else:
                entries_migrated += removed_entries

        head_keys_preserved = 0
        if policy.preserves_sender_state:
            current_head = getattr(probe, "current_head", None)
            if callable(current_head):
                head_keys_preserved = len(current_head())

        accountant.finish_event(
            record,
            moved_keys=moved,
            entries_migrated=entries_migrated,
            entries_lost=entries_lost,
            head_keys_preserved=head_keys_preserved,
        )

    def _collect_switch_log(self) -> list[dict]:
        """Gather per-source switch events into one stream-ordered log.

        Sorted by (per-source position, source index): positions measure
        the same per-source clock in every execution mode, so the log —
        unlike raw append order, which depends on how batches interleave
        the sources — is byte-identical across scalar/batched/columnar.
        """
        entries: list[tuple[int, int, dict]] = []
        for source_index, source in enumerate(self._sources):
            events = getattr(source, "switch_events", None)
            if not callable(events):
                continue
            for record in events():
                row = record.to_dict()
                row["source"] = source_index
                entries.append((record.position, source_index, row))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return [row for _, _, row in entries]

    def _build_result(self, num_messages: int) -> SimulationResult:
        tracker = self._tracker
        head_loads = tail_loads = None
        if self._config.track_head_tail:
            head_loads, tail_loads = tracker.head_tail_split()
        memory_entries = sum(len(keys) for keys in self._worker_keys)
        distinct_keys = len(set().union(*self._worker_keys)) if self._worker_keys else 0
        if self._accountant is not None:
            # Switch records are appended as each source routes its share,
            # an order that depends on the execution mode; offsets do not.
            # (offset, kind) is a total order: switch offsets are unique per
            # source and plan events carry distinct kinds.
            self._accountant.report().events.sort(
                key=lambda record: (record.offset, record.kind)
            )
        return SimulationResult(
            scheme=self._scheme,
            num_workers=tracker.num_workers,
            num_sources=self._config.num_sources,
            num_messages=num_messages,
            final_imbalance=tracker.imbalance(),
            average_imbalance=(
                self._series.average if self._series.values else tracker.imbalance()
            ),
            worker_loads=tracker.loads,
            head_loads=head_loads,
            tail_loads=tail_loads,
            time_series=self._series if self._series.times else None,
            memory_entries=memory_entries,
            head_key_count=len(self._head_keys),
            distinct_key_count=distinct_keys,
            migration=(
                self._accountant.report() if self._accountant is not None else None
            ),
            switch_log=self._collect_switch_log(),
            worst_window_imbalance=(
                self._window_series.worst if self._window_series is not None else None
            ),
        )
