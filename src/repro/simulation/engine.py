"""The partitioning simulation engine.

The engine wires together:

* a workload (an iterable of keys);
* ``s`` sources, each holding its own partitioner instance (so load
  estimation and heavy-hitter tracking are local to the sender, as in the
  paper);
* ``n`` workers, represented by the global :class:`LoadTracker` and a
  per-worker set of keys (to measure the worker-side memory of
  Section IV-B).

The input stream is distributed over sources round-robin, which models the
shuffle-grouped edge between the spout and the sources in the evaluation
setup (Section V-A).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator

from repro.exceptions import ConfigurationError
from repro.partitioning.base import Partitioner
from repro.partitioning.registry import canonical_name, create_partitioner
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import ImbalanceTimeSeries, LoadTracker
from repro.simulation.results import SimulationResult
from repro.types import Key


class SimulationEngine:
    """Runs one grouping scheme over one workload.

    Examples
    --------
    >>> from repro.simulation.config import SimulationConfig
    >>> config = SimulationConfig(scheme="PKG", num_workers=4, num_sources=2)
    >>> engine = SimulationEngine(config)
    >>> result = engine.run(["a", "b", "a", "c"] * 10)
    >>> result.num_messages
    40
    """

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._scheme = canonical_name(config.scheme)
        self._sources = self._build_sources()
        self._tracker = LoadTracker(
            config.num_workers, track_head_tail=config.track_head_tail
        )
        self._series = ImbalanceTimeSeries(interval=config.track_interval)
        # worker -> set of keys that hit it (memory measurement)
        self._worker_keys: list[set[Key]] = [
            set() for _ in range(config.num_workers)
        ]
        self._head_keys: set[Key] = set()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _build_sources(self) -> list[Partitioner]:
        """One partitioner per source.

        All sources share the hashing seed (``config.seed``) so they agree on
        each key's candidate workers — this is what makes routing-table-free
        schemes possible.  Schemes with per-source randomness that must
        differ across sources (shuffle grouping's starting offset) receive a
        distinct seed instead, because nothing about SG requires agreement.
        """
        config = self._config
        sources = []
        for index in range(config.num_sources):
            options = dict(config.scheme_options)
            seed = config.seed
            if self._scheme == "SG":
                seed = config.seed + index
            sources.append(
                create_partitioner(
                    self._scheme,
                    num_workers=config.num_workers,
                    seed=seed,
                    **options,
                )
            )
        return sources

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def sources(self) -> list[Partitioner]:
        return self._sources

    @property
    def tracker(self) -> LoadTracker:
        return self._tracker

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, keys: Iterable[Key]) -> SimulationResult:
        """Consume the workload and return the aggregated result.

        With ``config.batch_size > 1`` the stream is processed in chunks:
        each chunk is split over the sources round-robin (by global message
        index, exactly as the scalar loop assigns them), every source routes
        its share through ``route_batch``, and the decisions are
        re-interleaved back into stream order before metrics are recorded.
        Sources share no state, so the per-source key subsequences — and
        therefore every routing decision and every recorded metric — are
        identical to one-at-a-time routing.
        """
        if self._config.batch_size > 1:
            index = self._run_batched(keys)
        else:
            index = self._run_sequential(keys)
        if index == 0:
            raise ConfigurationError("cannot simulate an empty workload")
        self._series.final(self._tracker)
        return self._build_result(index)

    def _run_sequential(self, keys: Iterable[Key]) -> int:
        num_sources = self._config.num_sources
        sources = self._sources
        tracker = self._tracker
        series = self._series
        worker_keys = self._worker_keys
        head_keys = self._head_keys

        index = 0
        for key in keys:
            source = sources[index % num_sources]
            decision = source.route_with_decision(key)
            tracker.record(decision.worker, is_head=decision.is_head)
            worker_keys[decision.worker].add(key)
            if decision.is_head:
                head_keys.add(key)
            series.maybe_record(tracker)
            index += 1
        return index

    def _run_batched(self, keys: Iterable[Key]) -> int:
        config = self._config
        num_sources = config.num_sources
        sources = self._sources
        tracker = self._tracker
        series = self._series
        worker_keys = self._worker_keys
        head_keys = self._head_keys
        chunk_size = config.batch_size * num_sources

        if hasattr(keys, "iter_batches"):
            chunks: Iterator[list[Key]] = keys.iter_batches(chunk_size)
        else:
            iterator = iter(keys)
            chunks = iter(lambda: list(islice(iterator, chunk_size)), [])

        index = 0
        for chunk in chunks:
            if not chunk:
                continue
            # Round-robin split by *global* index, as the scalar loop does;
            # the shift keeps the mapping right when a chunk boundary (e.g.
            # from a workload's own iter_batches granularity) is not a
            # multiple of num_sources.
            shift = index % num_sources
            per_source = [
                chunk[(source - shift) % num_sources :: num_sources]
                for source in range(num_sources)
            ]
            workers = []
            flags = []
            for source, source_keys in zip(sources, per_source):
                source_flags: list[bool] = []
                workers.append(source.route_batch(source_keys, head_flags=source_flags))
                flags.append(source_flags)
            positions = [0] * num_sources
            for key in chunk:
                source_index = index % num_sources
                position = positions[source_index]
                positions[source_index] = position + 1
                worker = workers[source_index][position]
                is_head = flags[source_index][position]
                tracker.record(worker, is_head=is_head)
                worker_keys[worker].add(key)
                if is_head:
                    head_keys.add(key)
                series.maybe_record(tracker)
                index += 1
        return index

    def _build_result(self, num_messages: int) -> SimulationResult:
        tracker = self._tracker
        head_loads = tail_loads = None
        if self._config.track_head_tail:
            head_loads, tail_loads = tracker.head_tail_split()
        memory_entries = sum(len(keys) for keys in self._worker_keys)
        return SimulationResult(
            scheme=self._scheme,
            num_workers=self._config.num_workers,
            num_sources=self._config.num_sources,
            num_messages=num_messages,
            final_imbalance=tracker.imbalance(),
            average_imbalance=(
                self._series.average if self._series.values else tracker.imbalance()
            ),
            worker_loads=tracker.loads,
            head_loads=head_loads,
            tail_loads=tail_loads,
            time_series=self._series if self._series.times else None,
            memory_entries=memory_entries,
            head_key_count=len(self._head_keys),
        )
