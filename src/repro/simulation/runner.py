"""High-level helpers to run simulations and parameter sweeps."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.execution import ExecutionMode, ModeLike, resolve_mode
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.results import SimulationResult
from repro.types import Key
from repro.workloads.base import Workload


def run_simulation(
    workload: Workload | Iterable[Key],
    scheme: str,
    num_workers: int,
    num_sources: int = 5,
    seed: int = 0,
    scheme_options: dict[str, Any] | None = None,
    track_interval: int = 0,
    track_head_tail: bool = False,
    imbalance_window: int = 0,
    batch_size: int | None = None,
    columnar: bool | None = None,
    mode: ModeLike | None = None,
    rescale_plan: Any = None,
    rescale_policy: str = "rehash",
    migration_window: int = 1000,
) -> SimulationResult:
    """Run one grouping scheme over one workload and return the result.

    This is the main entry point of the library for simulation studies::

        from repro import ExecutionMode, ZipfWorkload, run_simulation

        workload = ZipfWorkload(exponent=1.5, num_keys=10_000, num_messages=1_000_000)
        result = run_simulation(workload, scheme="D-C", num_workers=50,
                                mode=ExecutionMode.columnar(4096))
        print(result.final_imbalance)

    ``mode`` selects the execution backend — ``ExecutionMode.scalar()``,
    ``.batched(n)`` or ``.columnar(n)``, or a spec string like
    ``"columnar:4096"``; the default is the historical ``batched(1024)``.
    Results are byte-identical for every mode, only throughput changes.
    The legacy ``batch_size=`` / ``columnar=`` keywords still work as
    deprecated aliases (a :class:`DeprecationWarning` is emitted) and mean
    exactly what they always did.

    ``rescale_plan`` (a :class:`~repro.elasticity.events.RescalePlan` or a
    spec string like ``"join@5000,fail@15000"``) makes workers join, leave
    or fail mid-stream; ``rescale_policy`` and ``migration_window`` choose
    how spec-string plans are executed.  The returned result then carries a
    :class:`~repro.elasticity.accountant.MigrationReport` in ``.migration``.

    ``imbalance_window`` > 0 additionally tracks the per-window imbalance
    (the metric adaptive partitioning is judged on); the worst window lands
    in ``result.worst_window_imbalance``.  For the adaptive scheme (``AD``),
    pass policy knobs via ``scheme_options`` — e.g.
    ``{"policy": "enter_skew=1.5,dwell=8000", "check_interval": 1000}``.
    """
    resolved = resolve_mode(
        mode,
        batch_size,
        columnar,
        default=ExecutionMode.batched(),
        where="run_simulation",
    )
    config = SimulationConfig(
        scheme=scheme,
        num_workers=num_workers,
        num_sources=num_sources,
        seed=seed,
        scheme_options=scheme_options or {},
        track_interval=track_interval,
        track_head_tail=track_head_tail,
        imbalance_window=imbalance_window,
        mode=resolved,
        rescale_plan=rescale_plan,
        rescale_policy=rescale_policy,
        migration_window=migration_window,
    )
    engine = SimulationEngine(config)
    # Pass the workload itself (not iter(workload)) so the batched path can
    # use a workload's chunked iterator when it provides one.
    return engine.run(workload)


def sweep(
    workload_factory,
    schemes: Sequence[str],
    worker_counts: Sequence[int],
    num_sources: int = 5,
    seed: int = 0,
    scheme_options: dict[str, Any] | None = None,
    track_interval: int = 0,
) -> list[SimulationResult]:
    """Run every (scheme, num_workers) combination.

    ``workload_factory`` is called with no arguments for each run so every
    run consumes a fresh stream (generators are single-use).  Use a lambda
    closing over the workload parameters::

        results = sweep(
            lambda: ZipfWorkload(1.5, 10_000, 500_000, seed=7),
            schemes=("PKG", "D-C", "W-C"),
            worker_counts=(5, 10, 50),
        )
    """
    results = []
    for scheme in schemes:
        for num_workers in worker_counts:
            results.append(
                run_simulation(
                    workload_factory(),
                    scheme=scheme,
                    num_workers=num_workers,
                    num_sources=num_sources,
                    seed=seed,
                    scheme_options=scheme_options,
                    track_interval=track_interval,
                )
            )
    return results


def results_table(results: Sequence[SimulationResult]) -> list[dict[str, object]]:
    """Flatten results into rows suitable for printing or CSV export."""
    return [result.summary() for result in results]
