"""Result object returned by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elasticity.accountant import MigrationReport
from repro.simulation.metrics import ImbalanceTimeSeries


@dataclass(slots=True)
class SimulationResult:
    """Everything an experiment needs from one simulation run.

    Attributes
    ----------
    scheme:
        Canonical name of the grouping scheme that was simulated.
    num_workers, num_sources, num_messages:
        The run's topology and stream length.
    final_imbalance:
        ``I(m)`` at the end of the stream — the headline metric of
        Figures 1, 7, 10 and 11.
    average_imbalance:
        Mean of the sampled ``I(t)`` values (equals ``final_imbalance`` when
        no time series was tracked).
    worker_loads:
        Absolute per-worker message counts at the end of the run.
    head_loads, tail_loads:
        Per-worker split of the load into head/tail contributions (only when
        head/tail tracking was enabled — Figure 8).
    time_series:
        The sampled ``I(t)`` series (empty when tracking was disabled).
    memory_entries:
        Number of (worker, key) state entries that would exist downstream,
        i.e. the worker-side memory of Section IV-B measured empirically.
    head_key_count:
        Number of distinct keys ever routed through the head path.
    distinct_key_count:
        Number of distinct keys with state on the *surviving* workers —
        the denominator of the average replication factor
        (:attr:`replication_factor`).
    migration:
        Migration-cost report of the run's rescale plan (``None`` in the
        fixed-worker setting).  When a plan shrank the cluster,
        ``num_workers``/``worker_loads`` describe the *final* worker set.
        Adaptive (``AD``) runs get a report even without a plan: scheme
        switches are priced in the same migration currency.
    switch_log:
        Scheme switches applied by adaptive sources during the run, in
        stream order: one dict per switch (``source``, ``position``,
        ``from_scheme``, ``to_scheme``, move costs, trigger metrics).
        Empty for every static scheme.
    worst_window_imbalance:
        Worst per-window imbalance of the run (see
        ``SimulationConfig.imbalance_window``); ``None`` when windowed
        tracking was disabled.
    """

    scheme: str
    num_workers: int
    num_sources: int
    num_messages: int
    final_imbalance: float
    average_imbalance: float
    worker_loads: list[int] = field(default_factory=list)
    head_loads: list[int] | None = None
    tail_loads: list[int] | None = None
    time_series: ImbalanceTimeSeries | None = None
    memory_entries: int = 0
    head_key_count: int = 0
    distinct_key_count: int = 0
    migration: MigrationReport | None = None
    switch_log: list[dict] = field(default_factory=list)
    worst_window_imbalance: float | None = None

    @property
    def normalized_loads(self) -> list[float]:
        total = sum(self.worker_loads)
        if total == 0:
            return [0.0] * self.num_workers
        return [load / total for load in self.worker_loads]

    @property
    def max_load(self) -> float:
        loads = self.normalized_loads
        return max(loads) if loads else 0.0

    @property
    def replication_factor(self) -> float:
        """Average workers-per-key: memory entries over distinct keys.

        1.0 for key grouping, at most 2 for PKG, between 1 and the worker
        count for the head/tail schemes (heads replicate, tails do not).
        """
        if self.distinct_key_count == 0:
            return 0.0
        return self.memory_entries / self.distinct_key_count

    @property
    def p99_load_factor(self) -> float:
        """p99 of the per-worker loads divided by the mean load.

        1.0 is a perfectly balanced cluster; the scenario regression
        suite bounds this tail ratio per scenario.
        """
        if not self.worker_loads:
            return 0.0
        mean = sum(self.worker_loads) / len(self.worker_loads)
        if mean == 0:
            return 0.0
        ordered = sorted(self.worker_loads)
        # Linear-interpolated percentile (numpy's default), dependency-free.
        rank = 0.99 * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        p99 = ordered[low] + (ordered[high] - ordered[low]) * (rank - low)
        return p99 / mean

    def summary(self) -> dict[str, object]:
        """A flat dictionary convenient for tabular reporting."""
        row: dict[str, object] = {
            "scheme": self.scheme,
            "workers": self.num_workers,
            "sources": self.num_sources,
            "messages": self.num_messages,
            "imbalance": self.final_imbalance,
            "avg_imbalance": self.average_imbalance,
            "max_load": self.max_load,
            "memory_entries": self.memory_entries,
            "head_keys": self.head_key_count,
        }
        if self.worst_window_imbalance is not None:
            row["worst_window_imbalance"] = self.worst_window_imbalance
        if self.switch_log:
            row["switches"] = len(self.switch_log)
        if self.migration is not None:
            row.update(self.migration.summary())
        return row
