"""Load tracking and imbalance metrics.

Implements the definitions of Section II-B:

* the load of worker ``w`` at time ``t`` is the fraction of messages handled
  by ``w`` up to ``t``;
* the imbalance is ``I(t) = max_w L_w(t) - avg_w L_w(t)``.

:class:`LoadTracker` maintains absolute per-worker counters (plus an optional
head/tail split), and :class:`ImbalanceTimeSeries` records ``I(t)`` at fixed
message intervals so the over-time plots (Figure 12) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, SimulationError
from repro.types import LoadSnapshot, WorkerId


class LoadTracker:
    """Global per-worker load counters.

    The tracker is the *observer's* view: it sees every message regardless of
    which source routed it, which is what the imbalance metric is defined
    over.  (Sources themselves only see their own traffic; that local view
    lives inside each partitioner.)
    """

    def __init__(self, num_workers: int, track_head_tail: bool = False) -> None:
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self._num_workers = num_workers
        self._loads = [0] * num_workers
        self._track_head_tail = track_head_tail
        self._head_loads = [0] * num_workers if track_head_tail else None
        self._total = 0
        self._messages_seen = 0

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def total_messages(self) -> int:
        """Messages currently in the load picture (the imbalance denominator).

        Decreases when a rescale retires workers — their handled messages
        leave the picture.  Use :attr:`messages_seen` for stream positions.
        """
        return self._total

    @property
    def messages_seen(self) -> int:
        """Monotonic count of every message ever recorded (stream position).

        Unlike :attr:`total_messages` this never decreases on a rescale, so
        it is the correct time axis for :class:`ImbalanceTimeSeries`.
        """
        return self._messages_seen

    @property
    def loads(self) -> list[int]:
        """Absolute number of messages routed to each worker."""
        return list(self._loads)

    def record(self, worker: WorkerId, is_head: bool = False) -> None:
        """Account for one message routed to ``worker``."""
        if not 0 <= worker < self._num_workers:
            raise SimulationError(
                f"worker {worker} outside [0, {self._num_workers})"
            )
        self._loads[worker] += 1
        self._total += 1
        self._messages_seen += 1
        if self._head_loads is not None and is_head:
            self._head_loads[worker] += 1

    def rescale(self, new_num_workers: int) -> None:
        """Resize the tracked worker set (workers are ``0 .. n-1``).

        Growing appends zero counters; shrinking drops the counters of the
        removed (highest-id) workers — the messages a departed worker
        handled leave the load picture, so the imbalance is always measured
        over the *currently active* workers, which is what an elasticity
        trajectory should show.
        """
        if new_num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {new_num_workers}"
            )
        old_num_workers = self._num_workers
        if new_num_workers == old_num_workers:
            return
        self._num_workers = new_num_workers
        if new_num_workers > old_num_workers:
            extra = new_num_workers - old_num_workers
            self._loads.extend([0] * extra)
            if self._head_loads is not None:
                self._head_loads.extend([0] * extra)
        else:
            self._total -= sum(self._loads[new_num_workers:])
            del self._loads[new_num_workers:]
            if self._head_loads is not None:
                del self._head_loads[new_num_workers:]

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    def normalized_loads(self) -> list[float]:
        """Per-worker load as a fraction of all messages."""
        if self._total == 0:
            return [0.0] * self._num_workers
        return [load / self._total for load in self._loads]

    def imbalance(self) -> float:
        """``I(t) = max_w L_w - avg_w L_w`` over normalised loads.

        The difference is non-negative by definition; the ``max`` guards
        against ``-0.0`` artefacts of floating-point summation.
        """
        normalized = self.normalized_loads()
        return max(0.0, max(normalized) - sum(normalized) / self._num_workers)

    def max_load(self) -> float:
        """Normalised load of the most loaded worker."""
        if self._total == 0:
            return 0.0
        return max(self._loads) / self._total

    def snapshot(self, time: float) -> LoadSnapshot:
        return LoadSnapshot(time=time, loads=list(self._loads))

    def head_tail_split(self) -> tuple[list[int], list[int]]:
        """Per-worker (head, tail) absolute loads (requires tracking enabled)."""
        if self._head_loads is None:
            raise SimulationError(
                "head/tail tracking was not enabled for this run"
            )
        tail = [
            total - head for total, head in zip(self._loads, self._head_loads)
        ]
        return list(self._head_loads), tail


@dataclass(slots=True)
class WindowedImbalanceSeries:
    """Per-window imbalance: ``I`` computed over each window's load *delta*.

    The cumulative imbalance ``I(t)`` dilutes a transient hot spell — a few
    thousand skewed messages vanish inside millions of balanced ones.  This
    series instead snapshots the absolute loads every ``interval`` messages
    and computes the imbalance of the messages routed *within* the window,
    so a scheme that lags behind a drift shows up in :attr:`worst` even when
    its end-of-stream imbalance looks fine.  A topology change (rescale)
    invalidates the open window's baseline; that window is dropped and the
    series re-baselines from the post-rescale loads — deterministic, and
    identical across the scalar/batched/columnar paths because windows close
    at exact message counts.
    """

    interval: int
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    _baseline: list[int] = field(default_factory=list)

    def maybe_record(self, tracker: LoadTracker) -> None:
        """Close the window if the tracker just crossed a boundary."""
        if self.interval <= 0:
            return
        seen = tracker.messages_seen
        if seen == 0 or seen % self.interval:
            return
        loads = tracker.loads
        baseline = self._baseline
        if len(baseline) != len(loads):
            # A rescale changed the worker set mid-window: the delta is not
            # well defined, so drop this window and restart from here.
            self._baseline = loads
            return
        delta = [now - then for now, then in zip(loads, baseline)]
        total = sum(delta)
        if total > 0:
            normalized = [d / total for d in delta]
            self.times.append(seen)
            self.values.append(
                max(0.0, max(normalized) - sum(normalized) / len(normalized))
            )
        self._baseline = loads

    @property
    def worst(self) -> float:
        """The worst single-window imbalance seen (0.0 with no closed window)."""
        return max(self.values) if self.values else 0.0

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.times, self.values))


@dataclass(slots=True)
class ImbalanceTimeSeries:
    """Imbalance ``I(t)`` sampled every ``interval`` messages."""

    interval: int
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def maybe_record(self, tracker: LoadTracker) -> None:
        """Record a sample if the tracker just crossed an interval boundary.

        The time axis is :attr:`LoadTracker.messages_seen` — the monotonic
        stream position — so samples stay correctly placed even when a
        rescale shrinks the load total.
        """
        if self.interval <= 0:
            return
        if tracker.messages_seen % self.interval == 0 and tracker.messages_seen > 0:
            self.times.append(tracker.messages_seen)
            self.values.append(tracker.imbalance())

    def final(self, tracker: LoadTracker) -> None:
        """Append the final imbalance if not already sampled."""
        if not self.times or self.times[-1] != tracker.messages_seen:
            self.times.append(tracker.messages_seen)
            self.values.append(tracker.imbalance())

    @property
    def average(self) -> float:
        """Average imbalance across all samples (used by Figure 10/11)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    @property
    def maximum(self) -> float:
        if not self.values:
            return 0.0
        return max(self.values)

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.times, self.values))
