"""Configuration of a partitioning simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.elasticity.events import RescalePlan, as_plan
from repro.exceptions import ConfigurationError
from repro.execution import ExecutionMode

#: Default number of sources used throughout the paper's simulations.
DEFAULT_NUM_SOURCES = 5


@dataclass(slots=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Attributes
    ----------
    scheme:
        Name of the grouping scheme ("PKG", "D-C", "W-C", "RR", "KG", "SG",
        "GREEDY-D"); resolved through the partitioner registry.
    num_workers:
        Number of downstream workers ``n``.
    num_sources:
        Number of sources ``s``; the input stream is split across them
        round-robin (shuffle grouping from the spout, as in the paper).
    seed:
        Base seed; source ``i`` uses ``seed + i`` for any scheme-internal
        randomness while all sources share the same *hashing* seed so they
        agree on key candidates.
    scheme_options:
        Extra keyword arguments forwarded to the partitioner constructor
        (``theta``, ``epsilon``, ``num_choices``, ``sketch`` ...).
    track_interval:
        Record the imbalance every ``track_interval`` messages.  0 disables
        the time series (only the final snapshot is kept), which speeds up
        large sweeps.
    track_head_tail:
        When True, per-worker load is additionally split into head/tail
        contributions (needed by the Figure 8 experiment).
    batch_size:
        Number of messages each source routes per ``route_batch`` call.  The
        engine chunks the stream, splits every chunk over the sources
        round-robin and re-interleaves the decisions, so results are
        byte-identical to one-at-a-time routing for every ``batch_size``
        (sources are independent; only the hashing is amortised).  1 forces
        the scalar path; the default keeps per-chunk working memory small
        while amortising the vectorized hashing.
    columnar:
        When True the engine consumes the workload through
        ``iter_batches_columnar`` — interned key-id arrays instead of key
        lists — and routes via ``route_batch_columnar``.  String keys are
        hashed exactly once (at interning); every layer downstream works on
        integer ids.  Results are byte-identical to the scalar and batched
        paths; worker-side key state and migration accounting operate in id
        space (a bijection over the keys actually seen).  Workloads without
        a native columnar iterator are wrapped transparently.
    mode:
        Optional :class:`~repro.execution.ExecutionMode` (or spec string
        like ``"columnar:4096"``).  When given it is authoritative:
        ``batch_size`` and ``columnar`` are overwritten from it, so callers
        choose the execution backend in one place.  When omitted, the two
        historical fields stand and ``mode`` is derived from them, so
        ``config.mode`` is always the normalised view of how the run will
        execute.  Results are byte-identical across all modes.
    imbalance_window:
        When > 0, additionally track the *per-window* imbalance: the load
        imbalance of each consecutive span of ``imbalance_window`` messages
        in isolation (see
        :class:`~repro.simulation.metrics.WindowedImbalanceSeries`).  The
        worst window is reported as
        :attr:`~repro.simulation.results.SimulationResult.worst_window_imbalance`
        — the metric the adaptive-partitioning experiment compares schemes
        on, because cumulative imbalance dilutes transient drift.  0 (the
        default) disables the series.
    rescale_plan:
        Optional elasticity schedule: a
        :class:`~repro.elasticity.events.RescalePlan` or a spec string like
        ``"join@5000,leave@12000,fail@15000"`` (normalised to a plan here).
        Events fire at their global stream offsets; ``num_workers`` is the
        *initial* worker count.  ``None``/empty reproduces the paper's
        fixed-worker setting.
    rescale_policy, migration_window:
        How spec-string plans are executed ("rehash", "migrate" or
        "remap") and the transition-window length in tuples (see
        :mod:`repro.elasticity.policies`); ignored when ``rescale_plan`` is
        already a :class:`RescalePlan` (which carries its own).
    """

    scheme: str
    num_workers: int
    num_sources: int = DEFAULT_NUM_SOURCES
    seed: int = 0
    scheme_options: dict[str, Any] = field(default_factory=dict)
    track_interval: int = 0
    track_head_tail: bool = False
    imbalance_window: int = 0
    batch_size: int = 1024
    columnar: bool = False
    mode: ExecutionMode | str | None = None
    rescale_plan: RescalePlan | str | None = None
    rescale_policy: str = "rehash"
    migration_window: int = 1000

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.num_sources < 1:
            raise ConfigurationError(
                f"num_sources must be >= 1, got {self.num_sources}"
            )
        if self.track_interval < 0:
            raise ConfigurationError(
                f"track_interval must be >= 0, got {self.track_interval}"
            )
        if self.imbalance_window < 0:
            raise ConfigurationError(
                f"imbalance_window must be >= 0, got {self.imbalance_window}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.mode is not None:
            self.mode = ExecutionMode.coerce(self.mode)
            self.batch_size = self.mode.batch_size
            self.columnar = self.mode.is_columnar
        elif self.columnar:
            self.mode = ExecutionMode.columnar(self.batch_size)
        elif self.batch_size == 1:
            self.mode = ExecutionMode.scalar()
        else:
            self.mode = ExecutionMode.batched(self.batch_size)
        self.rescale_plan = as_plan(
            self.rescale_plan,
            policy=self.rescale_policy,
            migration_window=self.migration_window,
        )
        if self.rescale_plan is not None:
            self.rescale_plan.validate_for(self.num_workers)
