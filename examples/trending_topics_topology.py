"""Trending topics on a multi-stage dataflow topology.

The example builds the kind of pipeline the paper's introduction motivates —
a streaming analytics job on social-media data — using the mini dataflow
runtime:

    external stream --SG--> splitter (stateless)
                     --D-C--> windowed counter (stateful, keyed by topic)

The splitter turns each "post" into topic mentions; the counter maintains
per-topic counts inside tumbling windows.  Because the edge into the counter
uses D-Choices, the hottest topics are spread over several counter instances;
the partial window counts are reconciled at the end to produce the exact
trending list, and the load report shows the instances stayed balanced.

Run with::

    python examples/trending_topics_topology.py
"""

from __future__ import annotations

import os

from collections import Counter

from repro import Topology, ZipfWorkload, run_topology
from repro.operators.aggregations import CountAggregator
from repro.operators.base import StatelessOperator
from repro.operators.reconciliation import reconcile
from repro.types import Message

NUM_SPLITTERS = 4
NUM_COUNTERS = 12
#: Stream length; the CI smoke test shrinks it via REPRO_EXAMPLE_MESSAGES.
NUM_POSTS = int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "50000"))
TOPICS = 3_000
SKEW = 1.6


def splitter_factory(instance_id: int) -> StatelessOperator:
    """Each post mentions one topic; re-key the message by that topic."""
    return StatelessOperator(
        lambda message: [Message(message.timestamp, message.value, 1)],
        instance_id=instance_id,
    )


def main() -> None:
    # Posts: the value carries the mentioned topic, drawn from a skewed
    # distribution (a handful of topics dominate the conversation).
    topic_stream = ZipfWorkload(
        exponent=SKEW, num_keys=TOPICS, num_messages=NUM_POSTS, seed=13
    )
    posts = (
        Message(timestamp=float(index), key=f"post-{index}", value=f"topic-{topic}")
        for index, topic in enumerate(topic_stream)
    )

    topology = (
        Topology("trending-topics")
        .add_vertex("splitter", splitter_factory, parallelism=NUM_SPLITTERS)
        .add_vertex("counter", CountAggregator, parallelism=NUM_COUNTERS)
        .set_source("splitter", scheme="SG")
        .add_edge("splitter", "counter", scheme="D-C")
    )

    result = run_topology(topology, posts, num_external_sources=NUM_SPLITTERS)

    counter_metrics = result.vertex_metrics("counter")
    print(f"posts ingested: {result.messages_ingested:,}")
    print(
        f"counter vertex: {counter_metrics.parallelism} instances, "
        f"imbalance I(m) = {counter_metrics.imbalance:.6f} "
        f"(ideal share = {1 / NUM_COUNTERS:.4f})"
    )

    merged, cost = reconcile(result.instances["counter"], CountAggregator.merge)
    print(
        f"state: {cost.distinct_keys:,} topics, {cost.total_entries:,} "
        f"(instance, topic) entries, max replication {cost.max_replication}, "
        f"average {cost.average_replication:.2f}"
    )

    trending = Counter(merged).most_common(5)
    print("trending topics:")
    for topic, mentions in trending:
        print(f"  {topic}: {mentions:,} mentions")


if __name__ == "__main__":
    main()
