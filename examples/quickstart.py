"""Quickstart: balance a skewed stream with D-Choices and compare with PKG.

Run with::

    python examples/quickstart.py

The script generates a heavily skewed Zipf stream (z = 1.8, the regime where
two choices stop being enough), partitions it over 50 workers with the main
grouping schemes, and prints the resulting load imbalance and worker-side
memory — the two quantities the paper trades off.
"""

from __future__ import annotations

import os

from repro import ZipfWorkload, run_simulation

NUM_WORKERS = 50
NUM_SOURCES = 5
#: Stream length; the CI smoke test shrinks it via REPRO_EXAMPLE_MESSAGES.
NUM_MESSAGES = int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "200000"))
SKEW = 1.8


def main() -> None:
    print(f"Zipf stream: z={SKEW}, |K|=10,000, m={NUM_MESSAGES:,}")
    print(f"Deployment: {NUM_SOURCES} sources -> {NUM_WORKERS} workers\n")
    print(f"{'scheme':8s} {'imbalance I(m)':>16s} {'max load':>10s} {'memory entries':>16s}")

    for scheme in ("KG", "PKG", "RR", "D-C", "W-C", "SG"):
        workload = ZipfWorkload(
            exponent=SKEW, num_keys=10_000, num_messages=NUM_MESSAGES, seed=42
        )
        result = run_simulation(
            workload,
            scheme=scheme,
            num_workers=NUM_WORKERS,
            num_sources=NUM_SOURCES,
            seed=1,
        )
        print(
            f"{scheme:8s} {result.final_imbalance:16.6f} "
            f"{result.max_load:10.4f} {result.memory_entries:16,d}"
        )

    print(
        "\nReading the table: ideal max load is 1/n = "
        f"{1 / NUM_WORKERS:.4f}.  KG and PKG overload the workers owning the "
        "hottest keys; D-C and W-C match shuffle grouping's balance at a "
        "fraction of its memory."
    )


if __name__ == "__main__":
    main()
