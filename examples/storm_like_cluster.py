"""Throughput and latency on the simulated Storm-like cluster (Figures 13-14).

Reproduces the paper's cluster experiment at a reduced scale: a Zipf stream
is pushed through the discrete-event cluster simulator with each grouping
scheme, and the script reports throughput, the tail latency percentiles and
the utilisation of the busiest worker.

Run with::

    python examples/storm_like_cluster.py
"""

from __future__ import annotations

import os

from repro import ZipfWorkload, run_cluster_experiment

NUM_SOURCES = 24
NUM_WORKERS = 40
#: Stream length; the CI smoke test shrinks it via REPRO_EXAMPLE_MESSAGES.
NUM_MESSAGES = int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "60000"))
SKEW = 2.0


def main() -> None:
    print(
        f"Cluster: {NUM_SOURCES} sources -> {NUM_WORKERS} workers, 1 ms per "
        f"message, Zipf z={SKEW}, m={NUM_MESSAGES:,}\n"
    )
    header = (
        f"{'scheme':8s} {'throughput/s':>14s} {'p50 ms':>9s} {'p99 ms':>9s} "
        f"{'max avg ms':>11s} {'busiest worker util':>20s}"
    )
    print(header)
    for scheme in ("KG", "PKG", "D-C", "W-C", "SG"):
        workload = ZipfWorkload(
            exponent=SKEW, num_keys=10_000, num_messages=NUM_MESSAGES, seed=21
        )
        result = run_cluster_experiment(
            workload,
            scheme,
            num_sources=NUM_SOURCES,
            num_workers=NUM_WORKERS,
            service_time_ms=1.0,
            seed=2,
        )
        print(
            f"{scheme:8s} {result.throughput_per_second:14,.0f} "
            f"{result.latency.p50:9.1f} {result.latency.p99:9.1f} "
            f"{result.latency.max_average:11.1f} "
            f"{max(result.worker_utilization):20.2f}"
        )
    print(
        "\nKey grouping saturates the single worker owning the hottest key, "
        "which caps throughput and inflates latency; D-Choices and W-Choices "
        "track shuffle grouping on both metrics."
    )


if __name__ == "__main__":
    main()
