"""Streaming word count over a Twitter-like stream (the paper's motivating app).

The canonical stateful streaming job: count word occurrences.  Words in
tweets follow a heavy-tailed distribution, so a key-grouped word count
overloads the workers owning stop-word-like keys.  This example builds the
full pipeline by hand — sources, a grouping scheme, and counting workers that
keep partial counts — and shows that the partial counts produced under
D-Choices can be aggregated exactly while the load stays balanced.

Run with::

    python examples/streaming_wordcount.py
"""

from __future__ import annotations

import os

from collections import Counter

from repro import TwitterLikeWorkload, create_partitioner

NUM_WORKERS = 20
NUM_SOURCES = 4
#: Stream length; the CI smoke test shrinks it via REPRO_EXAMPLE_MESSAGES.
NUM_MESSAGES = int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "150000"))
SCHEME = "D-C"


class CountingWorker:
    """A downstream operator instance holding partial word counts."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.partial_counts: Counter[str] = Counter()
        self.processed = 0

    def process(self, word: str) -> None:
        self.partial_counts[word] += 1
        self.processed += 1


def main() -> None:
    workload = TwitterLikeWorkload(num_messages=NUM_MESSAGES, seed=7)

    # One partitioner per source: each source keeps its own local load vector
    # and its own SpaceSaving sketch, exactly as in the paper's setting.
    sources = [
        create_partitioner(SCHEME, num_workers=NUM_WORKERS, seed=11)
        for _ in range(NUM_SOURCES)
    ]
    workers = [CountingWorker(worker_id) for worker_id in range(NUM_WORKERS)]

    exact_counts: Counter[str] = Counter()
    for index, word in enumerate(workload):
        source = sources[index % NUM_SOURCES]
        worker_id = source.route(word)
        workers[worker_id].process(word)
        exact_counts[word] += 1

    # --- load report -----------------------------------------------------
    total = sum(worker.processed for worker in workers)
    loads = [worker.processed / total for worker in workers]
    imbalance = max(loads) - 1.0 / NUM_WORKERS
    print(f"Scheme {SCHEME}: {total:,} words over {NUM_WORKERS} workers")
    print(f"load imbalance I(m) = {imbalance:.6f} (ideal share = {1 / NUM_WORKERS:.4f})")

    # --- aggregation: merge the partial counts and verify exactness ------
    merged: Counter[str] = Counter()
    for worker in workers:
        merged.update(worker.partial_counts)
    assert merged == exact_counts, "partial counts must aggregate exactly"

    replication = sum(len(worker.partial_counts) for worker in workers) / len(exact_counts)
    print(f"average replication per word: {replication:.2f} workers "
          "(shuffle grouping would approach the full worker count for hot words)")

    top = merged.most_common(5)
    print("top words:", ", ".join(f"{word}={count}" for word, count in top))


if __name__ == "__main__":
    main()
