"""Monitoring a drifting stream: cashtag aggregation with a rotating head.

The Cashtag workload of the paper changes drastically over time — which
ticker symbols are hot in one hour are cold in the next.  This stresses the
heavy-hitter tracking inside D-Choices / W-Choices: the sketch must pick up
the new head quickly enough to keep the load balanced.

The example replays a drifting stream hour by hour, reports the imbalance of
PKG versus W-Choices per hour, and prints which keys each source currently
considers hot at the end of every "hour".

Run with::

    python examples/cashtag_drift_monitoring.py
"""

from __future__ import annotations

import os

from repro import CashtagLikeWorkload, create_partitioner
from repro.simulation.metrics import LoadTracker

NUM_WORKERS = 80
NUM_SOURCES = 3
#: Stream length; the CI smoke test shrinks it via REPRO_EXAMPLE_MESSAGES.
NUM_MESSAGES = int(os.environ.get("REPRO_EXAMPLE_MESSAGES", "120000"))
NUM_HOURS = 6


def run_scheme(scheme: str) -> list[float]:
    """Replay the stream through ``scheme`` and return one imbalance per hour."""
    workload = CashtagLikeWorkload(
        num_messages=NUM_MESSAGES, num_keys=2_900, num_hours=NUM_HOURS, seed=3
    )
    sources = [
        create_partitioner(scheme, num_workers=NUM_WORKERS, seed=5)
        for _ in range(NUM_SOURCES)
    ]
    tracker = LoadTracker(NUM_WORKERS)
    hourly_imbalance: list[float] = []
    messages_per_hour = NUM_MESSAGES // NUM_HOURS

    for index, key in enumerate(workload):
        source = sources[index % NUM_SOURCES]
        tracker.record(source.route(key))
        if (index + 1) % messages_per_hour == 0:
            hourly_imbalance.append(tracker.imbalance())
            if scheme == "W-C":
                head = sorted(sources[0].current_head())[:5]
                print(f"  hour {len(hourly_imbalance)}: source 0 tracks head {head}")
    return hourly_imbalance


def main() -> None:
    print(
        f"Cashtag-like stream: {NUM_MESSAGES:,} messages, {NUM_HOURS} hours, "
        f"full head rotation every hour, {NUM_WORKERS} workers\n"
    )
    print("W-Choices (head tracked online by each source):")
    wchoices = run_scheme("W-C")
    print("\nPer-hour cumulative imbalance I(t):")
    pkg = run_scheme("PKG")
    print(f"{'hour':>6s} {'PKG':>12s} {'W-C':>12s}")
    for hour, (pkg_value, wc_value) in enumerate(zip(pkg, wchoices), start=1):
        print(f"{hour:6d} {pkg_value:12.6f} {wc_value:12.6f}")
    print(
        "\nDespite the drift, the SpaceSaving sketch re-learns the head every "
        "hour and W-Choices keeps the imbalance low.  At this scale (80 "
        "workers) the hottest cashtags exceed the ideal capacity of two "
        "workers, so PKG settles at a visibly higher imbalance."
    )


if __name__ == "__main__":
    main()
